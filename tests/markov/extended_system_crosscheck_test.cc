// Cross-checks the two stationary solvers — Gauss-Seidel and power
// iteration — on the *same JXP extended system* (local rows + world row +
// non-uniform teleport/dangling, paper Eqs. 5-10), not just on plain link
// matrices. The extended system is the input every local PageRank run and
// the incremental push solver (DESIGN.md §6j) operate on, so solver
// agreement here underwrites using either as the oracle of the other.
//
// Tolerance: each solver stops at L1 residual <= tolerance, which bounds
// its distance from the exact fixed point by tolerance / (1 - damping)
// (the affine map is a damping-contraction in L1). With tolerance 1e-13
// and damping 0.85 that is ~6.7e-13 per solver, ~1.4e-12 for the pair;
// the asserted 1e-10 leaves two orders of margin for rounding noise.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/extended_graph.h"
#include "core/jxp_peer.h"
#include "graph/generators.h"
#include "markov/gauss_seidel.h"
#include "markov/power_iteration.h"

namespace jxp {
namespace markov {
namespace {

constexpr double kSolverTolerance = 1e-13;
constexpr double kAgreementTolerance = 1e-10;

void ExpectSolversAgree(const core::ExtendedGraphSystem& system) {
  PowerIterationOptions options;
  options.tolerance = kSolverTolerance;
  options.max_iterations = 5000;
  const PowerIterationResult power = StationaryDistribution(
      system.matrix, system.teleport, system.dangling, {}, options);
  const PowerIterationResult gs = GaussSeidelStationary(
      system.matrix, system.teleport, system.dangling, {}, options);
  ASSERT_TRUE(power.converged);
  ASSERT_TRUE(gs.converged);
  ASSERT_EQ(power.distribution.size(), gs.distribution.size());
  for (size_t i = 0; i < power.distribution.size(); ++i) {
    EXPECT_NEAR(gs.distribution[i], power.distribution[i], kAgreementTolerance)
        << "state " << i << " of " << power.distribution.size();
  }
}

TEST(ExtendedSystemCrossCheckTest, SolversAgreeOnFreshPeerSystem) {
  // A fresh peer's system: empty world node, world row = pure self-loop.
  Random rng(11);
  const graph::Graph g = graph::BarabasiAlbert(120, 3, rng);
  std::vector<graph::PageId> pages;
  for (graph::PageId p = 0; p < 40; ++p) pages.push_back(p);
  const graph::Subgraph fragment = graph::Subgraph::Induce(g, pages);
  core::WorldNode world;
  ExpectSolversAgree(core::BuildExtendedSystem(
      fragment, world, 1.0 - 40.0 / 120.0, g.NumNodes()));
}

TEST(ExtendedSystemCrossCheckTest, SolversAgreeOnMetPeersSystems) {
  // Realistic systems: peers that have met carry populated world nodes
  // (non-trivial world rows) and drifted world scores.
  Random rng(12);
  const graph::Graph g = graph::BarabasiAlbert(120, 3, rng);
  core::JxpOptions options;
  options.pr_tolerance = 1e-12;
  std::vector<core::JxpPeer> peers;
  std::vector<std::vector<graph::PageId>> fragments(3);
  for (graph::PageId p = 0; p < g.NumNodes(); ++p) {
    fragments[rng.NextBounded(3)].push_back(p);
  }
  for (size_t p = 0; p < fragments.size(); ++p) {
    peers.emplace_back(static_cast<p2p::PeerId>(p),
                       graph::Subgraph::Induce(g, fragments[p]), g.NumNodes(),
                       options);
  }
  for (int round = 0; round < 8; ++round) {
    core::JxpPeer::Meet(peers[0], peers[1]);
    core::JxpPeer::Meet(peers[1], peers[2]);
    core::JxpPeer::Meet(peers[2], peers[0]);
  }
  for (const core::JxpPeer& peer : peers) {
    ExpectSolversAgree(core::BuildExtendedSystem(
        peer.fragment(), peer.world_node(), peer.world_score(), g.NumNodes()));
  }
}

}  // namespace
}  // namespace markov
}  // namespace jxp
