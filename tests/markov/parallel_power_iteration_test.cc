#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "markov/power_iteration.h"
#include "markov/sparse_matrix.h"

namespace jxp {
namespace markov {
namespace {

/// A random substochastic chain large enough to span several parallel
/// blocks (the pull kernel's grain is 1024 columns): ~6 out-links per
/// state, every 17th state dangling, row sums in (0, 1].
SparseMatrix RandomChain(size_t n, uint64_t seed) {
  Random rng(seed);
  SparseMatrixBuilder builder(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (i % 17 == 0) continue;  // Dangling.
    const size_t degree = 1 + rng.NextBounded(10);
    std::vector<double> weights(degree);
    double total = 0;
    for (double& w : weights) {
      w = 0.05 + rng.NextDouble();
      total += w;
    }
    // Every 5th state is substochastic (misses 10% of its mass).
    const double row_sum = i % 5 == 0 ? 0.9 : 1.0;
    builder.ReserveRow(i, degree);
    for (double w : weights) {
      builder.Add(i, static_cast<uint32_t>(rng.NextBounded(n)), row_sum * w / total);
    }
  }
  return builder.Build();
}

PowerIterationResult RunIteration(const SparseMatrix& m, int num_threads,
                                  ThreadPool* pool = nullptr) {
  PowerIterationOptions options;
  options.damping = 0.85;
  options.tolerance = 1e-12;
  options.max_iterations = 500;
  options.num_threads = num_threads;
  options.pool = pool;
  return StationaryDistribution(m, options);
}

TEST(ParallelPowerIterationTest, MatchesSequentialWithinTolerance) {
  const SparseMatrix m = RandomChain(3000, 42);
  const PowerIterationResult seq = RunIteration(m, 1);
  const PowerIterationResult par = RunIteration(m, 4);
  ASSERT_TRUE(seq.converged);
  ASSERT_TRUE(par.converged);
  ASSERT_EQ(seq.distribution.size(), par.distribution.size());
  double l1 = 0;
  for (size_t i = 0; i < seq.distribution.size(); ++i) {
    l1 += std::abs(seq.distribution[i] - par.distribution[i]);
  }
  // Both kernels converge to the same fixpoint; only summation order
  // differs, so the gap is on the order of the tolerance.
  EXPECT_LT(l1, 1e-10);
}

TEST(ParallelPowerIterationTest, BitIdenticalAcrossThreadCounts) {
  // The pull kernel's block partition depends only on (n, grain), never on
  // the thread count, and blockwise partials are combined in block order —
  // so any two thread counts > 1 give bitwise-identical results.
  const SparseMatrix m = RandomChain(5000, 7);
  const PowerIterationResult two = RunIteration(m, 2);
  const PowerIterationResult three = RunIteration(m, 3);
  const PowerIterationResult eight = RunIteration(m, 8);
  ASSERT_TRUE(two.converged);
  EXPECT_EQ(two.distribution, three.distribution);
  EXPECT_EQ(two.distribution, eight.distribution);
  EXPECT_EQ(two.iterations, eight.iterations);
  EXPECT_EQ(two.residual, eight.residual);
}

TEST(ParallelPowerIterationTest, ExternalPoolGivesSameResult) {
  const SparseMatrix m = RandomChain(3000, 99);
  ThreadPool pool(4);
  const PowerIterationResult owned = RunIteration(m, 4);
  const PowerIterationResult external = RunIteration(m, 4, &pool);
  EXPECT_EQ(owned.distribution, external.distribution);
  EXPECT_EQ(owned.iterations, external.iterations);
  // The pool stays usable afterwards.
  const PowerIterationResult again = RunIteration(m, 4, &pool);
  EXPECT_EQ(owned.distribution, again.distribution);
}

TEST(ParallelPowerIterationTest, NonUniformTeleportAndDangling) {
  const size_t n = 2500;
  const SparseMatrix m = RandomChain(n, 5);
  std::vector<double> teleport(n), dangling(n);
  double t_total = 0, d_total = 0;
  Random rng(11);
  for (size_t i = 0; i < n; ++i) {
    teleport[i] = rng.NextDouble();
    dangling[i] = rng.NextDouble();
    t_total += teleport[i];
    d_total += dangling[i];
  }
  for (size_t i = 0; i < n; ++i) {
    teleport[i] /= t_total;
    dangling[i] /= d_total;
  }
  PowerIterationOptions options;
  options.tolerance = 1e-12;
  options.num_threads = 1;
  const auto seq = StationaryDistribution(m, teleport, dangling, {}, options);
  options.num_threads = 4;
  const auto par = StationaryDistribution(m, teleport, dangling, {}, options);
  ASSERT_TRUE(seq.converged);
  ASSERT_TRUE(par.converged);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(seq.distribution[i], par.distribution[i], 1e-12) << "state " << i;
  }
}

TEST(TransposedMatrixTest, PullMultiplyMatchesLeftMultiply) {
  const size_t n = 800;
  const SparseMatrix m = RandomChain(n, 3);
  const TransposedMatrix transposed(m);
  Random rng(21);
  std::vector<double> x(n);
  for (double& v : x) v = rng.NextDouble();
  std::vector<double> push(n, 0.0), pull(n, 0.0);
  m.LeftMultiply(x, push);
  transposed.PullMultiply(x, pull, 0, n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(push[i], pull[i], 1e-14) << "column " << i;
  }
}

TEST(TransposedMatrixTest, ColumnRangesComposeDeterministically) {
  // Computing disjoint column ranges separately gives exactly the same
  // values as one full-range call: per-column accumulation order is fixed
  // by the transposed layout, independent of the range split.
  const size_t n = 1000;
  const SparseMatrix m = RandomChain(n, 13);
  const TransposedMatrix transposed(m);
  std::vector<double> x(n);
  Random rng(4);
  for (double& v : x) v = rng.NextDouble();
  std::vector<double> whole(n, 0.0), split(n, 0.0);
  transposed.PullMultiply(x, whole, 0, n);
  transposed.PullMultiply(x, split, 0, 337);
  transposed.PullMultiply(x, split, 337, 700);
  transposed.PullMultiply(x, split, 700, n);
  EXPECT_EQ(whole, split);
}

}  // namespace
}  // namespace markov
}  // namespace jxp
