#include "markov/state_aggregation.h"

#include <gtest/gtest.h>

#include "markov/dense_solver.h"

namespace jxp {
namespace markov {
namespace {

TEST(StateAggregationTest, BlockMassEqualsStationarySums) {
  // A 4-state ergodic chain aggregated into two blocks {0,1} and {2,3}:
  // the aggregated chain's stationary distribution must equal the block
  // sums of pi. This is the exactness property the JXP world node relies
  // on (paper Section 5).
  std::vector<std::vector<double>> p = {
      {0.1, 0.4, 0.3, 0.2},
      {0.3, 0.2, 0.2, 0.3},
      {0.25, 0.25, 0.25, 0.25},
      {0.4, 0.1, 0.1, 0.4},
  };
  auto pi = ExactStationaryDistribution(p);
  ASSERT_TRUE(pi.ok());
  auto aggregated = AggregateChain(p, pi.value(), {0, 0, 1, 1}, 2);
  ASSERT_TRUE(aggregated.ok()) << aggregated.status();

  // The aggregated 2x2 chain is stochastic.
  for (int b = 0; b < 2; ++b) {
    double row_sum = 0;
    for (int c = 0; c < 2; ++c) row_sum += aggregated.value().transitions[b][c];
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
  // Its stationary distribution matches the block masses.
  auto agg_pi = ExactStationaryDistribution(aggregated.value().transitions);
  ASSERT_TRUE(agg_pi.ok());
  EXPECT_NEAR(agg_pi.value()[0], aggregated.value().block_mass[0], 1e-10);
  EXPECT_NEAR(agg_pi.value()[1], aggregated.value().block_mass[1], 1e-10);
  EXPECT_NEAR(aggregated.value().block_mass[0],
              pi.value()[0] + pi.value()[1], 1e-12);
}

TEST(StateAggregationTest, SingletonBlocksReproduceChain) {
  std::vector<std::vector<double>> p = {
      {0.5, 0.5, 0.0},
      {0.2, 0.3, 0.5},
      {0.4, 0.4, 0.2},
  };
  auto pi = ExactStationaryDistribution(p);
  ASSERT_TRUE(pi.ok());
  auto aggregated = AggregateChain(p, pi.value(), {0, 1, 2}, 3);
  ASSERT_TRUE(aggregated.ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(aggregated.value().transitions[i][j], p[i][j], 1e-12);
    }
  }
}

TEST(StateAggregationTest, RejectsBadBlockIds) {
  std::vector<std::vector<double>> p = {{1.0, 0.0}, {0.0, 1.0}};
  auto result = AggregateChain(p, {0.5, 0.5}, {0, 5}, 2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StateAggregationTest, RejectsEmptyBlock) {
  std::vector<std::vector<double>> p = {{0.5, 0.5}, {0.5, 0.5}};
  auto result = AggregateChain(p, {0.5, 0.5}, {0, 0}, 2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace markov
}  // namespace jxp
