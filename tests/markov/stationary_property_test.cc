// Parameterized property tests: on randomly generated ergodic chains, the
// three stationary-distribution solvers (power iteration, Gauss-Seidel,
// dense Gaussian elimination) must agree, and the result must actually be a
// fixpoint of the damped equation.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "markov/dense_solver.h"
#include "markov/gauss_seidel.h"
#include "markov/power_iteration.h"

namespace jxp {
namespace markov {
namespace {

struct ChainCase {
  uint64_t seed;
  size_t num_states;
  double density;       // Probability of each off-diagonal entry existing.
  double dangling_fraction;  // Fraction of states with empty rows.
  double damping;
};

void PrintTo(const ChainCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << " states=" << c.num_states << " density=" << c.density
      << " dangling=" << c.dangling_fraction << " damping=" << c.damping;
}

SparseMatrix RandomChain(const ChainCase& param, Random& rng) {
  SparseMatrixBuilder builder(param.num_states);
  for (uint32_t i = 0; i < param.num_states; ++i) {
    if (rng.NextBool(param.dangling_fraction)) continue;  // Dangling state.
    std::vector<std::pair<uint32_t, double>> entries;
    double total = 0;
    for (uint32_t j = 0; j < param.num_states; ++j) {
      if (!rng.NextBool(param.density)) continue;
      const double w = 0.05 + rng.NextDouble();
      entries.emplace_back(j, w);
      total += w;
    }
    if (entries.empty()) {
      // Guarantee at least one out-transition for non-dangling states.
      entries.emplace_back(static_cast<uint32_t>(rng.NextBounded(param.num_states)), 1.0);
      total = 1.0;
    }
    for (const auto& [j, w] : entries) builder.Add(i, j, w / total);
  }
  return builder.Build();
}

class StationaryPropertyTest : public ::testing::TestWithParam<ChainCase> {};

TEST_P(StationaryPropertyTest, SolversAgreeAndFixpointHolds) {
  const ChainCase& param = GetParam();
  Random rng(param.seed);
  const SparseMatrix m = RandomChain(param, rng);
  const size_t n = m.NumStates();
  const std::vector<double> uniform(n, 1.0 / static_cast<double>(n));

  PowerIterationOptions options;
  options.damping = param.damping;
  options.tolerance = 1e-14;
  options.max_iterations = 5000;
  const PowerIterationResult power =
      StationaryDistribution(m, uniform, uniform, {}, options);
  ASSERT_TRUE(power.converged);
  const PowerIterationResult gs =
      GaussSeidelStationary(m, uniform, uniform, {}, options);
  ASSERT_TRUE(gs.converged);

  // Agreement between the two iterative solvers.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(power.distribution[i], gs.distribution[i], 1e-9) << "state " << i;
  }

  // Fixpoint property: x = eps*(xP + m(x) u) + (1-eps) u, verified directly.
  std::vector<double> propagated(n);
  m.LeftMultiply(power.distribution, propagated);
  double missing = 0;
  for (size_t i = 0; i < n; ++i) {
    missing += power.distribution[i] * (1.0 - m.RowSum(i));
  }
  for (size_t i = 0; i < n; ++i) {
    const double rhs = param.damping * (propagated[i] + missing * uniform[i]) +
                       (1 - param.damping) * uniform[i];
    EXPECT_NEAR(power.distribution[i], rhs, 1e-10) << "state " << i;
  }

  // Distribution property.
  double sum = 0;
  for (double v : power.distribution) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);

  // Dense validation for small chains.
  if (n <= 60 && param.damping < 1.0) {
    // Materialize the full damped chain (dangling -> uniform, plus jump).
    std::vector<std::vector<double>> dense = ToDense(m);
    for (size_t i = 0; i < n; ++i) {
      const double lost = 1.0 - m.RowSum(i);
      for (size_t j = 0; j < n; ++j) {
        dense[i][j] = param.damping * (dense[i][j] + lost * uniform[j]) +
                      (1 - param.damping) * uniform[j];
      }
    }
    const auto exact = ExactStationaryDistribution(dense);
    ASSERT_TRUE(exact.ok()) << exact.status();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(power.distribution[i], exact.value()[i], 1e-9) << "state " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StationaryPropertyTest,
    ::testing::Values(ChainCase{1, 20, 0.3, 0.0, 0.85}, ChainCase{2, 40, 0.2, 0.1, 0.85},
                      ChainCase{3, 60, 0.1, 0.2, 0.85}, ChainCase{4, 50, 0.15, 0.0, 0.5},
                      ChainCase{5, 30, 0.4, 0.3, 0.95}, ChainCase{6, 200, 0.05, 0.1, 0.85},
                      ChainCase{7, 25, 0.5, 0.0, 0.99}, ChainCase{8, 100, 0.08, 0.5, 0.85}));

}  // namespace
}  // namespace markov
}  // namespace jxp
