#include "wire/meeting_codec.h"

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/varint.h"
#include "graph/subgraph.h"
#include "synopses/hash_sketch.h"
#include "wire/wire_format.h"

namespace jxp {
namespace wire {
namespace {

/// A deterministic fragment of `n` pages with ids 3*i and a few successors
/// per page (some local, some external).
graph::Subgraph MakeFragment(size_t n) {
  std::vector<graph::PageId> pages;
  std::vector<std::vector<graph::PageId>> successors;
  for (size_t i = 0; i < n; ++i) {
    const graph::PageId page = static_cast<graph::PageId>(3 * i);
    pages.push_back(page);
    std::vector<graph::PageId> succ;
    if (i + 1 < n) succ.push_back(static_cast<graph::PageId>(3 * (i + 1)));
    succ.push_back(page + 1);  // External target.
    successors.push_back(std::move(succ));
  }
  return graph::Subgraph::FromKnowledge(std::move(pages), std::move(successors));
}

std::vector<double> MakeScores(size_t n) {
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) scores[i] = 1.0 / static_cast<double>(n + i + 1);
  return scores;
}

TEST(MeetingCodecTest, ScoreListRoundTripsAcrossChunks) {
  const size_t n = 150;  // > 2 chunks at the default 64 pages per chunk.
  const graph::Subgraph fragment = MakeFragment(n);
  const std::vector<double> scores = MakeScores(n);

  std::vector<uint8_t> bytes;
  EncodeScoreList(fragment, scores, EncodeOptions{}, bytes);

  DecodedMeeting decoded;
  ASSERT_TRUE(DecodeMeetingStrict(bytes, &decoded).ok());
  EXPECT_EQ(decoded.frames_decoded, (n + 63) / 64);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
  ASSERT_EQ(decoded.pages.size(), n);
  for (size_t i = 0; i < n; ++i) {
    const auto local = static_cast<graph::Subgraph::LocalIndex>(i);
    EXPECT_EQ(decoded.pages[i].page, fragment.GlobalId(local));
    EXPECT_EQ(decoded.pages[i].score, LowerBoundFloat(scores[i]));
    const auto expected = fragment.Successors(local);
    ASSERT_EQ(decoded.pages[i].successors.size(), expected.size());
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(),
                           decoded.pages[i].successors.begin()));
  }
}

TEST(MeetingCodecTest, ScoresAreQuantizedNeverUpward) {
  const size_t n = 40;
  const graph::Subgraph fragment = MakeFragment(n);
  const std::vector<double> scores = MakeScores(n);
  std::vector<uint8_t> bytes;
  EncodeScoreList(fragment, scores, EncodeOptions{}, bytes);
  DecodedMeeting decoded;
  ASSERT_TRUE(DecodeMeetingStrict(bytes, &decoded).ok());
  for (size_t i = 0; i < n; ++i) {
    // Theorem 5.3 safety: the wire never reports more than the exact double.
    EXPECT_LE(static_cast<double>(decoded.pages[i].score), scores[i]);
    EXPECT_NEAR(static_cast<double>(decoded.pages[i].score), scores[i],
                scores[i] * 1e-6);
  }
}

TEST(MeetingCodecTest, CompressionStaysUnderEightBytesPerEntry) {
  // Delta + VByte ids and 4-byte scores must beat the analytic model's
  // 16 B/page; the acceptance bar is < 8 B per score-list entry on a dense
  // id range, links excluded (dangling pages, so no successor cost).
  const size_t n = 512;
  std::vector<graph::PageId> pages(n);
  for (size_t i = 0; i < n; ++i) pages[i] = static_cast<graph::PageId>(i);
  const graph::Subgraph fragment = graph::Subgraph::FromKnowledge(
      std::move(pages), std::vector<std::vector<graph::PageId>>(n));
  std::vector<uint8_t> bytes;
  EncodeScoreList(fragment, MakeScores(n), EncodeOptions{}, bytes);
  EXPECT_LT(static_cast<double>(bytes.size()) / static_cast<double>(n), 8.0);
}

TEST(MeetingCodecTest, WorldKnowledgeRoundTrips) {
  const std::vector<graph::PageId> targets1 = {5, 9, 12};
  const std::vector<graph::PageId> targets2 = {7};
  const std::vector<WorldEntryIn> entries = {
      {100, 4, 0.001, targets1},
      {220, 1, 0.25, targets2},
  };
  const std::vector<DanglingIn> dangling = {{17, 0.0625}, {400, 0.125}};
  std::vector<uint8_t> bytes;
  EncodeWorldKnowledge(entries, dangling, bytes);

  DecodedMeeting decoded;
  ASSERT_TRUE(DecodeMeetingStrict(bytes, &decoded).ok());
  ASSERT_EQ(decoded.world_entries.size(), 2u);
  EXPECT_EQ(decoded.world_entries[0].page, 100u);
  EXPECT_EQ(decoded.world_entries[0].out_degree, 4u);
  EXPECT_EQ(decoded.world_entries[0].score, LowerBoundFloat(0.001));
  EXPECT_EQ(decoded.world_entries[0].targets, targets1);
  EXPECT_EQ(decoded.world_entries[1].page, 220u);
  EXPECT_EQ(decoded.world_entries[1].targets, targets2);
  ASSERT_EQ(decoded.world_dangling.size(), 2u);
  EXPECT_EQ(decoded.world_dangling[0].page, 17u);
  EXPECT_EQ(decoded.world_dangling[0].score, LowerBoundFloat(0.0625));
  EXPECT_EQ(decoded.world_dangling[1].page, 400u);
}

TEST(MeetingCodecTest, EmptyWorldKnowledgeIsNotFramed) {
  std::vector<uint8_t> bytes;
  EncodeWorldKnowledge({}, {}, bytes);
  EXPECT_TRUE(bytes.empty());
}

TEST(MeetingCodecTest, SynopsisRoundTrips) {
  synopses::HashSketch sketch(32, 0x1234);
  for (uint64_t key = 0; key < 500; ++key) sketch.Add(key * 977);
  std::vector<uint8_t> bytes;
  EncodeSynopsis(sketch, bytes);

  DecodedMeeting decoded;
  ASSERT_TRUE(DecodeMeetingStrict(bytes, &decoded).ok());
  ASSERT_TRUE(decoded.has_synopsis);
  EXPECT_EQ(decoded.synopsis_seed, sketch.seed());
  ASSERT_EQ(decoded.synopsis_bitmaps.size(), sketch.num_buckets());
  EXPECT_TRUE(std::equal(sketch.bitmaps().begin(), sketch.bitmaps().end(),
                         decoded.synopsis_bitmaps.begin()));
}

TEST(MeetingCodecTest, TruncatedTransferSalvagesWholeChunkPrefix) {
  const size_t n = 150;
  const graph::Subgraph fragment = MakeFragment(n);
  std::vector<uint8_t> bytes;
  EncodeScoreList(fragment, MakeScores(n), EncodeOptions{}, bytes);

  // Find the second chunk boundary by parsing two frames.
  size_t offset = 0;
  FrameView frame;
  ASSERT_TRUE(ParseFrame(bytes, offset, frame).ok());
  ASSERT_TRUE(ParseFrame(bytes, offset, frame).ok());
  const size_t two_chunks = offset;

  // Cut mid-third-chunk: the intact two-chunk prefix must decode.
  std::vector<uint8_t> cut(bytes.begin(),
                           bytes.begin() + static_cast<ptrdiff_t>(two_chunks + 10));
  const DecodedMeeting decoded = DecodeMeeting(cut);
  EXPECT_FALSE(decoded.error.ok());
  EXPECT_EQ(decoded.frames_decoded, 2u);
  EXPECT_EQ(decoded.bytes_consumed, two_chunks);
  ASSERT_EQ(decoded.pages.size(), 128u);
  for (size_t i = 0; i < decoded.pages.size(); ++i) {
    EXPECT_EQ(decoded.pages[i].page,
              fragment.GlobalId(static_cast<graph::Subgraph::LocalIndex>(i)));
  }
}

TEST(MeetingCodecTest, BitFlipRejectsOnlyTheDamagedSuffix) {
  const size_t n = 150;
  const graph::Subgraph fragment = MakeFragment(n);
  std::vector<uint8_t> bytes;
  EncodeScoreList(fragment, MakeScores(n), EncodeOptions{}, bytes);
  size_t offset = 0;
  FrameView frame;
  ASSERT_TRUE(ParseFrame(bytes, offset, frame).ok());
  const size_t first_chunk = offset;

  std::vector<uint8_t> corrupt = bytes;
  corrupt[first_chunk + 20] ^= 0x10;  // Inside the second frame.
  const DecodedMeeting decoded = DecodeMeeting(corrupt);
  EXPECT_FALSE(decoded.error.ok());
  EXPECT_EQ(decoded.frames_decoded, 1u);
  EXPECT_EQ(decoded.bytes_consumed, first_chunk);
  EXPECT_EQ(decoded.pages.size(), 64u);
}

TEST(MeetingCodecTest, OutOfOrderSectionsRejected) {
  const graph::Subgraph fragment = MakeFragment(40);
  const std::vector<graph::PageId> targets = {5};
  const std::vector<WorldEntryIn> entries = {{100, 2, 0.1, targets}};

  // World frame before the score chunks: the world decodes, the late score
  // chunk is rejected.
  std::vector<uint8_t> bytes;
  EncodeWorldKnowledge(entries, {}, bytes);
  EncodeScoreList(fragment, MakeScores(40), EncodeOptions{}, bytes);
  const DecodedMeeting decoded = DecodeMeeting(bytes);
  EXPECT_FALSE(decoded.error.ok());
  EXPECT_EQ(decoded.world_entries.size(), 1u);
  EXPECT_TRUE(decoded.pages.empty());
}

TEST(MeetingCodecTest, DuplicateWorldAndSynopsisFramesRejected) {
  const std::vector<graph::PageId> targets = {5};
  const std::vector<WorldEntryIn> entries = {{100, 2, 0.1, targets}};
  {
    std::vector<uint8_t> bytes;
    EncodeWorldKnowledge(entries, {}, bytes);
    EncodeWorldKnowledge(entries, {}, bytes);
    DecodedMeeting out;
    EXPECT_FALSE(DecodeMeetingStrict(bytes, &out).ok());
  }
  {
    synopses::HashSketch sketch(8, 0x99);
    sketch.Add(7);
    std::vector<uint8_t> bytes;
    EncodeSynopsis(sketch, bytes);
    EncodeSynopsis(sketch, bytes);
    DecodedMeeting out;
    EXPECT_FALSE(DecodeMeetingStrict(bytes, &out).ok());
  }
}

TEST(MeetingCodecTest, CorruptCountsCannotForceHugeAllocations) {
  // A kScoreChunk whose count field claims far more records than the payload
  // could hold must be rejected up front (no multi-GB reserve on garbage).
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(0);           // first_index
  writer.PutVarint32(0x0fffffff);  // absurd record count
  std::vector<uint8_t> bytes;
  AppendFrame(MessageType::kScoreChunk, payload, bytes);
  DecodedMeeting out;
  const Status status = DecodeMeetingStrict(bytes, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(out.pages.empty());
}

TEST(MeetingCodecTest, ResyncOffsetSkipsSemanticallyRejectedFrame) {
  // A checksum-valid frame whose payload semantics are rejected (absurd
  // record count) still has a trustworthy extent: resync_offset must point
  // one past it so a stream reader can recover what follows.
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(0);           // first_index
  writer.PutVarint32(0x0fffffff);  // absurd record count
  std::vector<uint8_t> bytes;
  AppendFrame(MessageType::kScoreChunk, payload, bytes);
  const size_t bad_frame_end = bytes.size();

  const std::vector<graph::PageId> targets = {5};
  const std::vector<WorldEntryIn> entries = {{100, 2, 0.1, targets}};
  EncodeWorldKnowledge(entries, {}, bytes);

  const DecodedMeeting decoded = DecodeMeeting(bytes);
  EXPECT_FALSE(decoded.error.ok());
  EXPECT_EQ(decoded.bytes_consumed, 0u);
  EXPECT_EQ(decoded.resync_offset, bad_frame_end);

  // Resynchronizing past the rejected frame recovers the world knowledge.
  const DecodedMeeting rest = DecodeMeeting(
      std::span<const uint8_t>(bytes).subspan(decoded.resync_offset));
  EXPECT_TRUE(rest.error.ok()) << rest.error.ToString();
  ASSERT_EQ(rest.world_entries.size(), 1u);
  EXPECT_EQ(rest.world_entries[0].page, 100u);
}

TEST(MeetingCodecTest, ResyncOffsetEqualsConsumedWhenFrameUntrustworthy) {
  // A checksum mismatch means the declared length cannot be trusted, so no
  // resynchronization point exists past the salvaged prefix.
  const graph::Subgraph fragment = MakeFragment(100);
  std::vector<uint8_t> bytes;
  EncodeScoreList(fragment, MakeScores(100), EncodeOptions{}, bytes);
  size_t offset = 0;
  FrameView frame;
  ASSERT_TRUE(ParseFrame(bytes, offset, frame).ok());
  const size_t first_chunk = offset;

  std::vector<uint8_t> corrupt = bytes;
  corrupt[first_chunk + 20] ^= 0x04;  // Inside the second frame.
  const DecodedMeeting decoded = DecodeMeeting(corrupt);
  EXPECT_FALSE(decoded.error.ok());
  EXPECT_EQ(decoded.bytes_consumed, first_chunk);
  EXPECT_EQ(decoded.resync_offset, first_chunk);
}

TEST(MeetingCodecTest, ResyncOffsetEqualsConsumedOnCleanDecode) {
  const graph::Subgraph fragment = MakeFragment(10);
  std::vector<uint8_t> bytes;
  EncodeScoreList(fragment, MakeScores(10), EncodeOptions{}, bytes);
  const DecodedMeeting decoded = DecodeMeeting(bytes);
  EXPECT_TRUE(decoded.error.ok());
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
  EXPECT_EQ(decoded.resync_offset, bytes.size());
}

TEST(MeetingCodecTest, NonFiniteAndNegativeScoresRejected) {
  for (const float bad : {-0.25f, std::numeric_limits<float>::infinity(),
                          std::numeric_limits<float>::quiet_NaN()}) {
    std::vector<uint8_t> payload;
    ByteWriter writer(payload);
    writer.PutVarint32(0);  // first_index
    writer.PutVarint32(1);  // count
    writer.PutVarint32(3);  // page id
    writer.PutFloat(bad);
    writer.PutVarint32(0);  // degree
    std::vector<uint8_t> bytes;
    AppendFrame(MessageType::kScoreChunk, payload, bytes);
    DecodedMeeting out;
    EXPECT_FALSE(DecodeMeetingStrict(bytes, &out).ok()) << "score " << bad;
  }
}

}  // namespace
}  // namespace wire
}  // namespace jxp
