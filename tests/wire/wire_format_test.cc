#include "wire/wire_format.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace jxp {
namespace wire {
namespace {

std::vector<uint8_t> SamplePayload() { return {1, 2, 3, 0x80, 0xff, 42}; }

TEST(WireFormatTest, AppendAndParseFrameRoundTrips) {
  const std::vector<uint8_t> payload = SamplePayload();
  std::vector<uint8_t> buffer;
  AppendFrame(MessageType::kWorldKnowledge, payload, buffer);
  ASSERT_EQ(buffer.size(), kFrameHeaderBytes + payload.size());

  size_t offset = 0;
  FrameView frame;
  ASSERT_TRUE(ParseFrame(buffer, offset, frame).ok());
  EXPECT_EQ(frame.type, MessageType::kWorldKnowledge);
  EXPECT_EQ(offset, buffer.size());
  ASSERT_EQ(frame.payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), frame.payload.begin()));
}

TEST(WireFormatTest, SealFrameMatchesAppendFrame) {
  const std::vector<uint8_t> payload = SamplePayload();
  std::vector<uint8_t> appended;
  AppendFrame(MessageType::kScoreChunk, payload, appended);

  // SealFrame writes the payload first, then inserts the header in front.
  std::vector<uint8_t> sealed = {9, 9, 9};  // Pre-existing bytes stay put.
  const size_t payload_start = sealed.size();
  sealed.insert(sealed.end(), payload.begin(), payload.end());
  SealFrame(MessageType::kScoreChunk, payload_start, sealed);

  ASSERT_EQ(sealed.size(), 3 + appended.size());
  EXPECT_EQ(std::vector<uint8_t>(sealed.begin(), sealed.begin() + 3),
            (std::vector<uint8_t>{9, 9, 9}));
  EXPECT_TRUE(std::equal(appended.begin(), appended.end(), sealed.begin() + 3));
}

TEST(WireFormatTest, EmptyPayloadFrameRoundTrips) {
  std::vector<uint8_t> buffer;
  AppendFrame(MessageType::kSynopsis, {}, buffer);
  EXPECT_EQ(buffer.size(), kFrameHeaderBytes);
  size_t offset = 0;
  FrameView frame;
  ASSERT_TRUE(ParseFrame(buffer, offset, frame).ok());
  EXPECT_EQ(frame.type, MessageType::kSynopsis);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireFormatTest, ParseConsumesConsecutiveFrames) {
  std::vector<uint8_t> buffer;
  AppendFrame(MessageType::kScoreChunk, SamplePayload(), buffer);
  AppendFrame(MessageType::kWorldKnowledge, {}, buffer);
  size_t offset = 0;
  FrameView frame;
  ASSERT_TRUE(ParseFrame(buffer, offset, frame).ok());
  EXPECT_EQ(frame.type, MessageType::kScoreChunk);
  ASSERT_TRUE(ParseFrame(buffer, offset, frame).ok());
  EXPECT_EQ(frame.type, MessageType::kWorldKnowledge);
  EXPECT_EQ(offset, buffer.size());
}

TEST(WireFormatTest, TruncatedHeaderRejected) {
  std::vector<uint8_t> buffer;
  AppendFrame(MessageType::kScoreChunk, SamplePayload(), buffer);
  for (size_t cut = 0; cut < kFrameHeaderBytes; ++cut) {
    size_t offset = 0;
    FrameView frame;
    const Status status =
        ParseFrame(std::span<const uint8_t>(buffer.data(), cut), offset, frame);
    EXPECT_FALSE(status.ok()) << "header cut to " << cut << " bytes";
    EXPECT_EQ(offset, 0u);
  }
}

TEST(WireFormatTest, TruncatedPayloadRejected) {
  std::vector<uint8_t> buffer;
  AppendFrame(MessageType::kScoreChunk, SamplePayload(), buffer);
  size_t offset = 0;
  FrameView frame;
  const Status status = ParseFrame(
      std::span<const uint8_t>(buffer.data(), buffer.size() - 1), offset, frame);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(offset, 0u);
}

TEST(WireFormatTest, EverySingleBitFlipIsDetected) {
  std::vector<uint8_t> buffer;
  AppendFrame(MessageType::kWorldKnowledge, SamplePayload(), buffer);
  for (size_t byte = 0; byte < buffer.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = buffer;
      corrupt[byte] ^= static_cast<uint8_t>(1u << bit);
      size_t offset = 0;
      FrameView frame;
      const Status status = ParseFrame(corrupt, offset, frame);
      EXPECT_FALSE(status.ok()) << "flip at byte " << byte << " bit " << bit;
      EXPECT_EQ(offset, 0u);
    }
  }
}

TEST(WireFormatTest, UnknownVersionAndTypeRejected) {
  std::vector<uint8_t> buffer;
  AppendFrame(MessageType::kScoreChunk, SamplePayload(), buffer);
  // A future version or type also has a valid checksum in a well-formed
  // frame, so rebuild the frame byte-for-byte and only break the one field —
  // the parser must reject on the field itself, not the checksum.
  {
    std::vector<uint8_t> future = buffer;
    future[2] = kVersion + 1;
    size_t offset = 0;
    FrameView frame;
    EXPECT_FALSE(ParseFrame(future, offset, frame).ok());
  }
  {
    std::vector<uint8_t> unknown = buffer;
    unknown[3] = 0x7e;
    size_t offset = 0;
    FrameView frame;
    EXPECT_FALSE(ParseFrame(unknown, offset, frame).ok());
  }
}

TEST(WireFormatTest, PayloadLengthPastBufferRejectedBeforeChecksum) {
  std::vector<uint8_t> buffer;
  AppendFrame(MessageType::kScoreChunk, SamplePayload(), buffer);
  buffer[4] = 0xff;  // Claim a 255+ byte payload the buffer does not hold.
  size_t offset = 0;
  FrameView frame;
  const Status status = ParseFrame(buffer, offset, frame);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(offset, 0u);
}

TEST(WireFormatTest, WriterReaderPrimitivesRoundTrip) {
  std::vector<uint8_t> bytes;
  ByteWriter writer(bytes);
  writer.PutU8(0xab);
  writer.PutU32(0xdeadbeefu);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutVarint32(0xffffffffu);
  writer.PutVarint64(0xffffffffffffffffULL);
  writer.PutVarint32(0);
  writer.PutFloat(1.5f);

  ByteReader reader(bytes);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  float f = 0;
  ASSERT_TRUE(reader.GetU8(&u8));
  EXPECT_EQ(u8, 0xab);
  ASSERT_TRUE(reader.GetU32(&u32));
  EXPECT_EQ(u32, 0xdeadbeefu);
  ASSERT_TRUE(reader.GetU64(&u64));
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  ASSERT_TRUE(reader.GetVarint32(&u32));
  EXPECT_EQ(u32, 0xffffffffu);
  ASSERT_TRUE(reader.GetVarint64(&u64));
  EXPECT_EQ(u64, 0xffffffffffffffffULL);
  ASSERT_TRUE(reader.GetVarint32(&u32));
  EXPECT_EQ(u32, 0u);
  ASSERT_TRUE(reader.GetFloat(&f));
  EXPECT_EQ(f, 1.5f);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireFormatTest, ReaderFailuresLeaveCursorUntouched) {
  const std::vector<uint8_t> bytes = {1, 2};
  ByteReader reader(bytes);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  EXPECT_FALSE(reader.GetU32(&u32));
  EXPECT_FALSE(reader.GetU64(&u64));
  EXPECT_EQ(reader.position(), 0u);
  uint8_t u8 = 0;
  ASSERT_TRUE(reader.GetU8(&u8));
  EXPECT_EQ(reader.position(), 1u);
}

TEST(WireFormatTest, VarintRejectsValueOverflow) {
  // 5-byte varint carrying 35 significant bits: fine for 64, too wide for 32.
  const std::vector<uint8_t> wide = {0x80, 0x80, 0x80, 0x80, 0x10};
  {
    ByteReader reader(wide);
    uint32_t v = 0;
    EXPECT_FALSE(reader.GetVarint32(&v));
    EXPECT_EQ(reader.position(), 0u);
  }
  {
    ByteReader reader(wide);
    uint64_t v = 0;
    ASSERT_TRUE(reader.GetVarint64(&v));
    EXPECT_EQ(v, 1ULL << 32);
  }
  // A 10th byte carrying more than the final 64-bit value bit.
  const std::vector<uint8_t> overlong = {0x80, 0x80, 0x80, 0x80, 0x80,
                                         0x80, 0x80, 0x80, 0x80, 0x02};
  ByteReader reader(overlong);
  uint64_t v = 0;
  EXPECT_FALSE(reader.GetVarint64(&v));
  EXPECT_EQ(reader.position(), 0u);
}

TEST(WireFormatTest, VarintRejectsUnterminatedEncoding) {
  const std::vector<uint8_t> unterminated = {0x80, 0x80};
  ByteReader reader(unterminated);
  uint64_t v = 0;
  EXPECT_FALSE(reader.GetVarint64(&v));
  EXPECT_EQ(reader.position(), 0u);
}

}  // namespace
}  // namespace wire
}  // namespace jxp
