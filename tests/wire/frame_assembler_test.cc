#include "wire/frame_assembler.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "wire/wire_format.h"

namespace jxp {
namespace wire {
namespace {

std::vector<uint8_t> SamplePayload() { return {1, 2, 3, 0x80, 0xff, 42, 7}; }

std::vector<uint8_t> OneFrame(uint8_t type, const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> buffer;
  AppendFrameRaw(type, payload, buffer);
  return buffer;
}

/// Feeds `data` in `chunk`-byte pieces, collecting every completed frame as
/// (type, payload) pairs. Returns the total bytes the assembler consumed.
size_t FeedChunked(FrameAssembler& assembler, const std::vector<uint8_t>& data,
                   size_t chunk,
                   std::vector<std::pair<uint8_t, std::vector<uint8_t>>>& frames) {
  size_t fed = 0;
  while (fed < data.size()) {
    const size_t n = std::min(chunk, data.size() - fed);
    const std::span<const uint8_t> piece(data.data() + fed, n);
    size_t consumed_of_piece = 0;
    while (consumed_of_piece < n) {
      const size_t consumed =
          assembler.Feed(piece.subspan(consumed_of_piece));
      if (assembler.HasFrame()) {
        frames.emplace_back(assembler.frame_type(),
                            std::vector<uint8_t>(assembler.frame_payload().begin(),
                                                 assembler.frame_payload().end()));
        assembler.ConsumeFrame();
      }
      if (consumed == 0 && !assembler.HasFrame()) {
        // Error state: nothing further will be consumed.
        return fed + consumed_of_piece;
      }
      consumed_of_piece += consumed;
    }
    fed += n;
  }
  return fed;
}

TEST(FrameAssemblerTest, SingleFrameOneShot) {
  FrameAssembler assembler;
  const std::vector<uint8_t> data = OneFrame(0x12, SamplePayload());
  EXPECT_EQ(assembler.Feed(data), data.size());
  ASSERT_TRUE(assembler.HasFrame());
  EXPECT_EQ(assembler.frame_type(), 0x12);
  EXPECT_EQ(std::vector<uint8_t>(assembler.frame_payload().begin(),
                                 assembler.frame_payload().end()),
            SamplePayload());
  assembler.ConsumeFrame();
  EXPECT_FALSE(assembler.HasFrame());
  EXPECT_TRUE(assembler.error().ok());
}

TEST(FrameAssemblerTest, OneByteAtATime) {
  FrameAssembler assembler;
  std::vector<uint8_t> data = OneFrame(0x10, SamplePayload());
  std::vector<uint8_t> second = OneFrame(0x11, {});
  data.insert(data.end(), second.begin(), second.end());

  std::vector<std::pair<uint8_t, std::vector<uint8_t>>> frames;
  EXPECT_EQ(FeedChunked(assembler, data, 1, frames), data.size());
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].first, 0x10);
  EXPECT_EQ(frames[0].second, SamplePayload());
  EXPECT_EQ(frames[1].first, 0x11);
  EXPECT_TRUE(frames[1].second.empty());
  EXPECT_TRUE(assembler.error().ok());
}

TEST(FrameAssemblerTest, SplitInsideHeaderAndInsidePayload) {
  const std::vector<uint8_t> data = OneFrame(0x20, SamplePayload());
  // Every split point of a single frame must reassemble identically.
  for (size_t split = 1; split + 1 < data.size(); ++split) {
    FrameAssembler assembler;
    EXPECT_EQ(assembler.Feed(std::span(data.data(), split)), split);
    EXPECT_FALSE(assembler.HasFrame());
    EXPECT_EQ(assembler.Feed(std::span(data.data() + split, data.size() - split)),
              data.size() - split);
    ASSERT_TRUE(assembler.HasFrame()) << "split at " << split;
    EXPECT_EQ(std::vector<uint8_t>(assembler.frame_payload().begin(),
                                   assembler.frame_payload().end()),
              SamplePayload());
  }
}

TEST(FrameAssemblerTest, StopsConsumingAtFrameBoundary) {
  // Bytes after a completed frame stay with the caller until ConsumeFrame —
  // the property the net layer's blob-mode switch depends on.
  FrameAssembler assembler;
  std::vector<uint8_t> data = OneFrame(0x14, {9, 9});
  const std::vector<uint8_t> blob = {0xaa, 0xbb, 0xcc};
  data.insert(data.end(), blob.begin(), blob.end());

  const size_t consumed = assembler.Feed(data);
  EXPECT_EQ(consumed, data.size() - blob.size());
  ASSERT_TRUE(assembler.HasFrame());
  assembler.ConsumeFrame();
  // The trailing blob bytes were never touched by the assembler.
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(FrameAssemblerTest, OversizedLengthRejectedBeforeAllocation) {
  FrameAssembler assembler(/*max_payload_bytes=*/64);
  std::vector<uint8_t> data = OneFrame(0x10, std::vector<uint8_t>(65, 1));
  const size_t consumed = assembler.Feed(data);
  // The assembler stops at the header: the bogus payload is never buffered.
  EXPECT_EQ(consumed, kFrameHeaderBytes);
  EXPECT_TRUE(assembler.failed());
  EXPECT_EQ(assembler.error().code(), StatusCode::kOutOfRange)
      << assembler.error().ToString();
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  // Sticky: further input is refused.
  EXPECT_EQ(assembler.Feed(data), 0u);
}

TEST(FrameAssemblerTest, HugeDeclaredLengthNeverReserves) {
  // A length field of ~4 GiB must be rejected at header time under the
  // default cap, long before any allocation.
  std::vector<uint8_t> header = OneFrame(0x10, {});
  header[4] = 0xff;
  header[5] = 0xff;
  header[6] = 0xff;
  header[7] = 0xff;
  FrameAssembler assembler;
  assembler.Feed(header);
  EXPECT_TRUE(assembler.failed());
  EXPECT_EQ(assembler.error().code(), StatusCode::kOutOfRange);
}

TEST(FrameAssemblerTest, BadMagicAndBadVersionFailFast) {
  std::vector<uint8_t> bad_magic = OneFrame(0x10, SamplePayload());
  bad_magic[0] ^= 0xff;
  FrameAssembler a1;
  a1.Feed(bad_magic);
  EXPECT_TRUE(a1.failed());

  std::vector<uint8_t> bad_version = OneFrame(0x10, SamplePayload());
  bad_version[2] = kVersion + 1;
  FrameAssembler a2;
  a2.Feed(bad_version);
  EXPECT_TRUE(a2.failed());
}

TEST(FrameAssemblerTest, ChecksumMismatchDetected) {
  std::vector<uint8_t> data = OneFrame(0x10, SamplePayload());
  data.back() ^= 0x01;  // Flip one payload bit.
  FrameAssembler assembler;
  assembler.Feed(data);
  EXPECT_FALSE(assembler.HasFrame());
  EXPECT_TRUE(assembler.failed());
  EXPECT_EQ(assembler.error().code(), StatusCode::kCorruption);
}

TEST(FrameAssemblerTest, ArbitraryTypeBytesPassThrough) {
  // The assembler does not restrict the type space (the net layer defines
  // types outside the meeting payload set).
  for (uint8_t type : {uint8_t{0}, uint8_t{0x10}, uint8_t{0x29}, uint8_t{0xfe}}) {
    FrameAssembler assembler;
    const std::vector<uint8_t> data = OneFrame(type, {1, 2, 3});
    assembler.Feed(data);
    ASSERT_TRUE(assembler.HasFrame()) << int(type);
    EXPECT_EQ(assembler.frame_type(), type);
  }
}

TEST(FrameAssemblerTest, ResetRecoversFromError) {
  std::vector<uint8_t> bad = OneFrame(0x10, SamplePayload());
  bad[0] ^= 0xff;
  FrameAssembler assembler;
  assembler.Feed(bad);
  ASSERT_TRUE(assembler.failed());
  assembler.Reset();
  EXPECT_TRUE(assembler.error().ok());
  const std::vector<uint8_t> good = OneFrame(0x11, SamplePayload());
  EXPECT_EQ(assembler.Feed(good), good.size());
  EXPECT_TRUE(assembler.HasFrame());
}

TEST(FrameAssemblerTest, ParsesFrameStreamIdenticallyToParseFrame) {
  // A multi-frame meeting-style stream reassembled in 3-byte chunks matches
  // the batch parser frame for frame.
  std::vector<uint8_t> data;
  const std::vector<uint8_t> world_payload = {5, 5, 5, 5};
  AppendFrame(MessageType::kScoreChunk, SamplePayload(), data);
  AppendFrame(MessageType::kWorldKnowledge, world_payload, data);
  AppendFrame(MessageType::kSynopsis, std::vector<uint8_t>{}, data);

  std::vector<std::pair<uint8_t, std::vector<uint8_t>>> streamed;
  FrameAssembler assembler;
  FeedChunked(assembler, data, 3, streamed);

  size_t offset = 0;
  std::vector<std::pair<uint8_t, std::vector<uint8_t>>> batch;
  while (offset < data.size()) {
    FrameView frame;
    ASSERT_TRUE(ParseFrame(data, offset, frame).ok());
    batch.emplace_back(static_cast<uint8_t>(frame.type),
                       std::vector<uint8_t>(frame.payload.begin(), frame.payload.end()));
  }
  EXPECT_EQ(streamed, batch);
}

}  // namespace
}  // namespace wire
}  // namespace jxp
