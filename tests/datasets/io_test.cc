#include "datasets/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace jxp {
namespace datasets {
namespace {

class CollectionIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prefix_ = ::testing::TempDir() + "/collection_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override {
    std::remove((prefix_ + ".edges").c_str());
    std::remove((prefix_ + ".categories").c_str());
  }
  std::string prefix_;
};

TEST_F(CollectionIoTest, RoundTrip) {
  const Collection original = MakeAmazonLike(0.005, 3);
  ASSERT_TRUE(SaveCollection(original, prefix_).ok());
  auto loaded = LoadCollection(prefix_, "restored");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name, "restored");
  EXPECT_EQ(loaded->data.graph.NumNodes(), original.data.graph.NumNodes());
  EXPECT_EQ(loaded->data.graph.NumEdges(), original.data.graph.NumEdges());
  EXPECT_EQ(loaded->data.category, original.data.category);
  EXPECT_EQ(loaded->data.num_categories, original.data.num_categories);
  // Spot-check adjacency.
  for (graph::PageId u = 0; u < original.data.graph.NumNodes(); u += 53) {
    EXPECT_EQ(loaded->data.graph.OutDegree(u), original.data.graph.OutDegree(u));
  }
}

TEST_F(CollectionIoTest, MissingFilesAreIOErrors) {
  auto loaded = LoadCollection(prefix_, "x");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(CollectionIoTest, DetectsTruncatedCategories) {
  const Collection original = MakeAmazonLike(0.005, 3);
  ASSERT_TRUE(SaveCollection(original, prefix_).ok());
  {
    std::ofstream out(prefix_ + ".categories", std::ios::trunc);
    out << "categories " << original.data.num_categories << " nodes "
        << original.data.graph.NumNodes() << "\n0\n1\n";
  }
  auto loaded = LoadCollection(prefix_, "x");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(CollectionIoTest, DetectsOutOfRangeCategory) {
  const Collection original = MakeAmazonLike(0.005, 3);
  ASSERT_TRUE(SaveCollection(original, prefix_).ok());
  {
    std::ofstream out(prefix_ + ".categories", std::ios::trunc);
    out << "categories 2 nodes 1\n7\n";
  }
  {
    std::ofstream out(prefix_ + ".edges", std::ios::trunc);
    out << "";
  }
  auto loaded = LoadCollection(prefix_, "x");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(CollectionIoTest, DetectsBadHeader) {
  {
    std::ofstream out(prefix_ + ".categories");
    out << "hello world\n";
  }
  auto loaded = LoadCollection(prefix_, "x");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace datasets
}  // namespace jxp
