#include "datasets/collections.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace jxp {
namespace datasets {
namespace {

TEST(CollectionsTest, AmazonLikeShape) {
  const Collection c = MakeAmazonLike(0.02, 1);  // ~1100 pages.
  EXPECT_EQ(c.name, "amazon");
  EXPECT_NEAR(static_cast<double>(c.data.graph.NumNodes()), 55196 * 0.02, 2);
  EXPECT_EQ(c.data.num_categories, 10u);
  const double mean_out =
      static_cast<double>(c.data.graph.NumEdges()) / c.data.graph.NumNodes();
  EXPECT_GT(mean_out, 3.0);
  EXPECT_LT(mean_out, 5.5);
}

TEST(CollectionsTest, WebCrawlLikeIsDenser) {
  const Collection amazon = MakeAmazonLike(0.02, 1);
  const Collection web = MakeWebCrawlLike(0.02, 1);
  EXPECT_EQ(web.name, "webcrawl");
  const double amazon_density =
      static_cast<double>(amazon.data.graph.NumEdges()) / amazon.data.graph.NumNodes();
  const double web_density =
      static_cast<double>(web.data.graph.NumEdges()) / web.data.graph.NumNodes();
  EXPECT_GT(web_density, 2 * amazon_density);
}

TEST(CollectionsTest, PowerLawIndegree) {
  // Figure 3's property: both collections have near power-law in-degree.
  for (const Collection& c : {MakeAmazonLike(0.05, 2), MakeWebCrawlLike(0.03, 2)}) {
    const auto histogram = DegreeHistogram(c.data.graph, graph::DegreeKind::kIn);
    const double alpha = graph::PowerLawExponentMle(histogram, 4);
    EXPECT_GT(alpha, 1.2) << c.name;
    EXPECT_LT(alpha, 4.0) << c.name;
  }
}

TEST(CollectionsTest, DeterministicInSeed) {
  const Collection a = MakeAmazonLike(0.01, 7);
  const Collection b = MakeAmazonLike(0.01, 7);
  EXPECT_EQ(a.data.graph.NumEdges(), b.data.graph.NumEdges());
  EXPECT_EQ(a.data.category, b.data.category);
}

TEST(CollectionsTest, MinimumSizeFloor) {
  const Collection tiny = MakeAmazonLike(1e-9, 3);
  EXPECT_GE(tiny.data.graph.NumNodes(), 200u);
}

}  // namespace
}  // namespace datasets
}  // namespace jxp
