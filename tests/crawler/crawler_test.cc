#include "crawler/partitioner.h"
#include "crawler/thematic_crawler.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace jxp {
namespace crawler {
namespace {

graph::CategorizedGraph SmallCollection(uint64_t seed = 42) {
  Random rng(seed);
  graph::WebGraphParams params;
  params.num_nodes = 1000;
  params.num_categories = 5;
  params.mean_out_degree = 5;
  return GenerateWebGraph(params, rng);
}

TEST(ThematicCrawlerTest, RespectsBudget) {
  const auto collection = SmallCollection();
  Random rng(1);
  CrawlerOptions options;
  options.max_pages = 50;
  const auto pages = ThematicCrawl(collection, 0, options, rng);
  EXPECT_LE(pages.size(), 50u);
  EXPECT_GT(pages.size(), 0u);
}

TEST(ThematicCrawlerTest, NoDuplicatePages) {
  const auto collection = SmallCollection();
  Random rng(2);
  CrawlerOptions options;
  options.max_pages = 200;
  const auto pages = ThematicCrawl(collection, 1, options, rng);
  std::unordered_set<graph::PageId> unique(pages.begin(), pages.end());
  EXPECT_EQ(unique.size(), pages.size());
}

TEST(ThematicCrawlerTest, FocusesOnOwnCategory) {
  const auto collection = SmallCollection();
  Random rng(3);
  CrawlerOptions options;
  options.max_pages = 300;
  const auto pages = ThematicCrawl(collection, 2, options, rng);
  size_t on_topic = 0;
  for (graph::PageId p : pages) {
    if (collection.category[p] == 2) ++on_topic;
  }
  // With 5 categories a random set would be ~20% on-topic; the focused
  // crawl must be far above that.
  EXPECT_GT(static_cast<double>(on_topic) / pages.size(), 0.5);
}

TEST(ThematicCrawlerTest, SeedsAreFromCategory) {
  const auto collection = SmallCollection();
  Random rng(4);
  CrawlerOptions options;
  options.max_pages = 5;
  options.num_seeds = 5;
  options.max_depth = 0;  // Only seeds.
  const auto pages = ThematicCrawl(collection, 3, options, rng);
  for (graph::PageId p : pages) EXPECT_EQ(collection.category[p], 3u);
}

TEST(CrawlBasedPartitionTest, ShapeAndCoverage) {
  const auto collection = SmallCollection();
  Random rng(5);
  PartitionOptions options;
  options.peers_per_category = 3;
  options.crawler.max_pages = 120;
  const auto fragments = CrawlBasedPartition(collection, options, rng);
  ASSERT_EQ(fragments.size(), 15u);  // 5 categories x 3 peers.
  std::unordered_set<graph::PageId> covered;
  for (const auto& fragment : fragments) {
    EXPECT_FALSE(fragment.empty());
    covered.insert(fragment.begin(), fragment.end());
  }
  EXPECT_EQ(covered.size(), collection.graph.NumNodes());
}

TEST(CrawlBasedPartitionTest, WithoutCoverageGuaranteeMayLeaveGaps) {
  const auto collection = SmallCollection();
  Random rng(6);
  PartitionOptions options;
  options.peers_per_category = 1;
  options.crawler.max_pages = 30;
  options.ensure_coverage = false;
  const auto fragments = CrawlBasedPartition(collection, options, rng);
  size_t total = 0;
  for (const auto& fragment : fragments) total += fragment.size();
  EXPECT_LT(total, collection.graph.NumNodes());
}

TEST(CrawlBasedPartitionTest, FragmentsOverlap) {
  const auto collection = SmallCollection();
  Random rng(7);
  PartitionOptions options;
  options.peers_per_category = 4;
  options.crawler.max_pages = 200;
  const auto fragments = CrawlBasedPartition(collection, options, rng);
  // Same-category peers crawl from the same region: expect overlap.
  std::unordered_set<graph::PageId> first(fragments[0].begin(), fragments[0].end());
  size_t shared = 0;
  for (graph::PageId p : fragments[1]) shared += first.count(p);
  EXPECT_GT(shared, 0u);
}

TEST(FragmentSplitPartitionTest, PaperSection63Shape) {
  const auto collection = SmallCollection();
  Random rng(8);
  const auto peers = FragmentSplitPartition(collection, 4, 3, rng);
  ASSERT_EQ(peers.size(), 20u);  // 5 categories x 4 peers.
  // Each peer holds ~3/4 of its category (1000/5 = 200 pages per category).
  for (const auto& fragment : peers) {
    EXPECT_NEAR(static_cast<double>(fragment.size()), 150.0, 3.0);
  }
  // Same-category peers overlap on ~2/4 chunks pairwise... at least half.
  std::unordered_set<graph::PageId> p0(peers[0].begin(), peers[0].end());
  size_t shared = 0;
  for (graph::PageId p : peers[1]) shared += p0.count(p);
  EXPECT_GT(shared, peers[1].size() / 2);
  // The 4 peers of a category jointly cover it.
  std::unordered_set<graph::PageId> covered;
  for (int j = 0; j < 4; ++j) covered.insert(peers[j].begin(), peers[j].end());
  size_t category_size = 0;
  for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
    if (collection.category[p] == collection.category[peers[0][0]]) ++category_size;
  }
  EXPECT_EQ(covered.size(), category_size);
}

}  // namespace
}  // namespace crawler
}  // namespace jxp
