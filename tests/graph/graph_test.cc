#include "graph/graph.h"

#include <gtest/gtest.h>

namespace jxp {
namespace graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  GraphBuilder builder;
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, BasicAdjacency) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(2, 1);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(1), 2u);
  ASSERT_EQ(g.OutNeighbors(0).size(), 2u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_EQ(g.OutNeighbors(0)[1], 2u);
  ASSERT_EQ(g.InNeighbors(1).size(), 2u);
  EXPECT_EQ(g.InNeighbors(1)[0], 0u);
  EXPECT_EQ(g.InNeighbors(1)[1], 2u);
}

TEST(GraphTest, NodesGrowWithEdges) {
  GraphBuilder builder;
  builder.AddEdge(5, 9);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumNodes(), 10u);
}

TEST(GraphTest, DeduplicatesParallelEdges) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, RemovesSelfLoopsByDefault) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, KeepsSelfLoopsWhenAsked) {
  GraphBuilder::Options options;
  options.remove_self_loops = false;
  GraphBuilder builder(2, options);
  builder.AddEdge(0, 0);
  const Graph g = builder.Build();
  EXPECT_TRUE(g.HasEdge(0, 0));
}

TEST(GraphTest, KeepsParallelEdgesWhenAsked) {
  GraphBuilder::Options options;
  options.deduplicate = false;
  GraphBuilder builder(2, options);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
}

TEST(GraphTest, HasEdge) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 2);
  const Graph g = builder.Build();
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(GraphTest, EdgesRoundTrip) {
  GraphBuilder builder(3);
  builder.AddEdge(2, 0);
  builder.AddEdge(0, 1);
  const Graph g = builder.Build();
  const std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{2, 0}));
}

}  // namespace
}  // namespace graph
}  // namespace jxp
