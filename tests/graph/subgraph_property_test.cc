// Parameterized property tests of the Subgraph invariants on generated
// graphs: the fragment's knowledge must exactly mirror the global graph, and
// Merge must equal Induce over the union for any pair of fragments.

#include <unordered_set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/subgraph.h"

namespace jxp {
namespace graph {
namespace {

struct SubgraphCase {
  uint64_t seed;
  size_t num_nodes;
  size_t out_degree;
  double fragment_fraction;
};

void PrintTo(const SubgraphCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << " nodes=" << c.num_nodes << " outdeg=" << c.out_degree
      << " fraction=" << c.fragment_fraction;
}

class SubgraphPropertyTest : public ::testing::TestWithParam<SubgraphCase> {};

std::vector<PageId> RandomFragment(size_t num_nodes, double fraction, Random& rng) {
  std::vector<PageId> pages;
  for (PageId p = 0; p < num_nodes; ++p) {
    if (rng.NextBool(fraction)) pages.push_back(p);
  }
  if (pages.empty()) pages.push_back(static_cast<PageId>(rng.NextBounded(num_nodes)));
  return pages;
}

TEST_P(SubgraphPropertyTest, KnowledgeMirrorsGlobalGraph) {
  const SubgraphCase& param = GetParam();
  Random rng(param.seed);
  const Graph g = BarabasiAlbert(param.num_nodes, param.out_degree, rng);
  const std::vector<PageId> pages =
      RandomFragment(param.num_nodes, param.fragment_fraction, rng);
  const Subgraph sg = Subgraph::Induce(g, pages);

  size_t local_edges = 0;
  size_t external_edges = 0;
  for (Subgraph::LocalIndex i = 0; i < sg.NumLocalPages(); ++i) {
    const PageId p = sg.GlobalId(i);
    // Successor list == the page's true out-links.
    const auto knowledge = sg.Successors(i);
    const auto truth = g.OutNeighbors(p);
    ASSERT_EQ(knowledge.size(), truth.size()) << "page " << p;
    for (size_t k = 0; k < truth.size(); ++k) EXPECT_EQ(knowledge[k], truth[k]);
    EXPECT_EQ(sg.GlobalOutDegree(i), g.OutDegree(p));
    // Local/external split is consistent.
    for (Subgraph::LocalIndex j : sg.LocalOutNeighbors(i)) {
      EXPECT_TRUE(g.HasEdge(p, sg.GlobalId(j)));
    }
    local_edges += sg.LocalOutNeighbors(i).size();
    external_edges += sg.NumExternalSuccessors(i);
    EXPECT_EQ(sg.LocalOutNeighbors(i).size() + sg.NumExternalSuccessors(i),
              g.OutDegree(p));
  }
  EXPECT_EQ(sg.NumLocalEdges(), local_edges);
  EXPECT_EQ(sg.NumExternalOutEdges(), external_edges);

  // AllSuccessors is exactly the union of the out-neighborhoods.
  std::unordered_set<PageId> expected;
  for (PageId p : pages) {
    for (PageId q : g.OutNeighbors(p)) expected.insert(q);
  }
  const std::vector<PageId> all = sg.AllSuccessors();
  EXPECT_EQ(all.size(), expected.size());
  for (PageId q : all) EXPECT_TRUE(expected.count(q));
}

TEST_P(SubgraphPropertyTest, MergeEqualsInduceOnUnion) {
  const SubgraphCase& param = GetParam();
  Random rng(param.seed ^ 0xfeed);
  const Graph g = BarabasiAlbert(param.num_nodes, param.out_degree, rng);
  const std::vector<PageId> pages_a =
      RandomFragment(param.num_nodes, param.fragment_fraction, rng);
  const std::vector<PageId> pages_b =
      RandomFragment(param.num_nodes, param.fragment_fraction, rng);
  const Subgraph merged =
      Subgraph::Merge(Subgraph::Induce(g, pages_a), Subgraph::Induce(g, pages_b));
  std::vector<PageId> union_pages = pages_a;
  union_pages.insert(union_pages.end(), pages_b.begin(), pages_b.end());
  const Subgraph direct = Subgraph::Induce(g, union_pages);

  ASSERT_EQ(merged.NumLocalPages(), direct.NumLocalPages());
  EXPECT_EQ(merged.NumLocalEdges(), direct.NumLocalEdges());
  EXPECT_EQ(merged.NumExternalOutEdges(), direct.NumExternalOutEdges());
  for (Subgraph::LocalIndex i = 0; i < merged.NumLocalPages(); ++i) {
    EXPECT_EQ(merged.GlobalId(i), direct.GlobalId(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubgraphPropertyTest,
                         ::testing::Values(SubgraphCase{10, 100, 3, 0.3},
                                           SubgraphCase{11, 300, 2, 0.1},
                                           SubgraphCase{12, 300, 5, 0.6},
                                           SubgraphCase{13, 50, 4, 0.9},
                                           SubgraphCase{14, 500, 3, 0.02},
                                           SubgraphCase{15, 200, 6, 0.5}));

}  // namespace
}  // namespace graph
}  // namespace jxp
