#include "graph/edge_list.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace jxp {
namespace graph {
namespace {

class EdgeListTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/edges_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(EdgeListTest, RoundTrip) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  const Graph original = builder.Build();
  ASSERT_TRUE(WriteEdgeList(original, path_).ok());
  auto loaded = ReadEdgeList(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumNodes(), 4u);
  EXPECT_EQ(loaded->NumEdges(), 3u);
  EXPECT_TRUE(loaded->HasEdge(3, 0));
}

TEST_F(EdgeListTest, SkipsCommentsAndBlankLines) {
  WriteFile("# a comment\n\n0 1\n  # indented comment\n1 2\n");
  auto g = ReadEdgeList(path_);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumEdges(), 2u);
}

TEST_F(EdgeListTest, MinNodesExtendsGraph) {
  WriteFile("0 1\n");
  auto g = ReadEdgeList(path_, 10);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 10u);
}

TEST_F(EdgeListTest, MalformedLineIsCorruption) {
  WriteFile("0 1\nnot an edge\n");
  auto g = ReadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
}

TEST_F(EdgeListTest, NegativeIdIsCorruption) {
  WriteFile("0 -1\n");
  auto g = ReadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kCorruption);
}

TEST_F(EdgeListTest, MissingFileIsIOError) {
  auto g = ReadEdgeList(path_ + ".does-not-exist");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace graph
}  // namespace jxp
