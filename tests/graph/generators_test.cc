#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace jxp {
namespace graph {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Random rng(1);
  const Graph g = ErdosRenyi(50, 200, rng);
  EXPECT_EQ(g.NumNodes(), 50u);
  EXPECT_EQ(g.NumEdges(), 200u);
  for (PageId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_FALSE(g.HasEdge(u, u));
  }
}

TEST(BarabasiAlbertTest, StructureAndDegrees) {
  Random rng(2);
  const size_t out_degree = 3;
  const Graph g = BarabasiAlbert(200, out_degree, rng);
  EXPECT_EQ(g.NumNodes(), 200u);
  // Every non-seed node has exactly out_degree out-links.
  for (PageId u = static_cast<PageId>(out_degree + 1); u < g.NumNodes(); ++u) {
    EXPECT_EQ(g.OutDegree(u), out_degree) << "node " << u;
  }
  // No dangling nodes; preferential attachment produces a heavy tail: the
  // max in-degree far exceeds the mean.
  EXPECT_EQ(CountDangling(g), 0u);
  size_t max_in = 0;
  for (PageId u = 0; u < g.NumNodes(); ++u) max_in = std::max(max_in, g.InDegree(u));
  const double mean_in = static_cast<double>(g.NumEdges()) / g.NumNodes();
  EXPECT_GT(static_cast<double>(max_in), 4 * mean_in);
}

TEST(WebGraphTest, RespectsParameters) {
  Random rng(3);
  WebGraphParams params;
  params.num_nodes = 2000;
  params.num_categories = 10;
  params.mean_out_degree = 5.0;
  const CategorizedGraph cg = GenerateWebGraph(params, rng);
  EXPECT_EQ(cg.graph.NumNodes(), 2000u);
  EXPECT_EQ(cg.category.size(), 2000u);
  EXPECT_EQ(cg.num_categories, 10u);
  // Balanced categories (within one).
  std::vector<size_t> sizes(10, 0);
  for (CategoryId c : cg.category) {
    ASSERT_LT(c, 10u);
    sizes[c]++;
  }
  for (size_t s : sizes) EXPECT_EQ(s, 200u);
  // Mean out-degree in the right ballpark (dedup removes a few).
  const double mean = static_cast<double>(cg.graph.NumEdges()) / cg.graph.NumNodes();
  EXPECT_GT(mean, 3.0);
  EXPECT_LT(mean, 6.5);
}

TEST(WebGraphTest, TopicalLocality) {
  Random rng(4);
  WebGraphParams params;
  params.num_nodes = 3000;
  params.intra_category_probability = 0.8;
  const CategorizedGraph cg = GenerateWebGraph(params, rng);
  size_t intra = 0;
  size_t total = 0;
  for (PageId u = 0; u < cg.graph.NumNodes(); ++u) {
    for (PageId v : cg.graph.OutNeighbors(u)) {
      ++total;
      if (cg.category[u] == cg.category[v]) ++intra;
    }
  }
  ASSERT_GT(total, 0u);
  // Under uniform linking intra fraction would be ~0.1; the generator's
  // bias must push it well above.
  EXPECT_GT(static_cast<double>(intra) / total, 0.5);
}

TEST(WebGraphTest, PowerLawInDegreeTail) {
  Random rng(5);
  WebGraphParams params;
  params.num_nodes = 8000;
  params.mean_out_degree = 6;
  const CategorizedGraph cg = GenerateWebGraph(params, rng);
  const auto histogram = DegreeHistogram(cg.graph, DegreeKind::kIn);
  const double alpha = PowerLawExponentMle(histogram, 4);
  // Web-like graphs have in-degree exponents around 1.7 - 3.
  EXPECT_GT(alpha, 1.3);
  EXPECT_LT(alpha, 3.5);
}

TEST(WebGraphTest, DeterministicInSeed) {
  WebGraphParams params;
  params.num_nodes = 500;
  Random rng1(9);
  Random rng2(9);
  const CategorizedGraph a = GenerateWebGraph(params, rng1);
  const CategorizedGraph b = GenerateWebGraph(params, rng2);
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  EXPECT_EQ(a.category, b.category);
}

}  // namespace
}  // namespace graph
}  // namespace jxp
