#include "graph/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"

namespace jxp {
namespace graph {
namespace {

Graph Line3() {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  return builder.Build();
}

TEST(StatsTest, DegreeHistogram) {
  const Graph g = Line3();
  const auto out = DegreeHistogram(g, DegreeKind::kOut);
  EXPECT_EQ(out.at(0), 1u);  // Node 2.
  EXPECT_EQ(out.at(1), 2u);  // Nodes 0, 1.
  const auto in = DegreeHistogram(g, DegreeKind::kIn);
  EXPECT_EQ(in.at(0), 1u);
  EXPECT_EQ(in.at(1), 2u);
}

TEST(StatsTest, CountDangling) {
  EXPECT_EQ(CountDangling(Line3()), 1u);
}

TEST(StatsTest, LogBinnedHistogramMassPreserved) {
  std::map<size_t, size_t> histogram = {{1, 100}, {2, 50}, {3, 20}, {10, 5}, {100, 1}};
  const auto points = LogBinnedHistogram(histogram, 5);
  double mass = 0;
  for (const auto& [center, count] : points) mass += count;
  EXPECT_DOUBLE_EQ(mass, 176.0);
  // Bin centers ascend.
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].first, points[i - 1].first);
  }
}

TEST(StatsTest, LogBinnedHistogramSkipsDegreeZero) {
  std::map<size_t, size_t> histogram = {{0, 7}, {1, 3}};
  const auto points = LogBinnedHistogram(histogram, 5);
  double mass = 0;
  for (const auto& [center, count] : points) mass += count;
  EXPECT_DOUBLE_EQ(mass, 3.0);
}

TEST(StatsTest, PowerLawMleRecoversExponent) {
  // Synthesize an exact power law: count(d) ~ d^-alpha.
  const double alpha = 2.1;
  std::map<size_t, size_t> histogram;
  for (size_t d = 1; d <= 2000; ++d) {
    histogram[d] = static_cast<size_t>(1e7 * std::pow(static_cast<double>(d), -alpha));
  }
  const double estimated = PowerLawExponentMle(histogram, 5);
  EXPECT_NEAR(estimated, alpha, 0.1);
}

TEST(StatsTest, PowerLawMleDegenerateCases) {
  EXPECT_EQ(PowerLawExponentMle({}, 1), 0.0);
  EXPECT_EQ(PowerLawExponentMle({{1, 1}}, 2), 0.0);
}

TEST(StatsTest, WeaklyConnectedComponents) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 1);  // {0,1,2} weakly connected.
  builder.AddEdge(3, 4);  // {3,4}.
  const Graph g = builder.Build();  // Node 5 isolated.
  const auto [component, count] = WeaklyConnectedComponents(g);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(component[0], component[1]);
  EXPECT_EQ(component[1], component[2]);
  EXPECT_EQ(component[3], component[4]);
  EXPECT_NE(component[0], component[3]);
  EXPECT_NE(component[0], component[5]);
  EXPECT_NEAR(LargestWccFraction(g), 0.5, 1e-12);
}

TEST(StatsTest, GeneratedWebGraphIsWellConnected) {
  Random rng(8);
  WebGraphParams params;
  params.num_nodes = 2000;
  const CategorizedGraph cg = GenerateWebGraph(params, rng);
  EXPECT_GT(LargestWccFraction(cg.graph), 0.95);
}

}  // namespace
}  // namespace graph
}  // namespace jxp
