#include "graph/subgraph.h"

#include <gtest/gtest.h>

namespace jxp {
namespace graph {
namespace {

/// 0 -> {1,2}, 1 -> {2,3}, 2 -> {0}, 3 -> {4}, 4 -> {}.
Graph TestGraph() {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 4);
  return builder.Build();
}

TEST(SubgraphTest, InduceBasics) {
  const Graph g = TestGraph();
  const Subgraph sg = Subgraph::Induce(g, {2, 0, 1, 2});  // Unsorted + dup.
  EXPECT_EQ(sg.NumLocalPages(), 3u);
  EXPECT_EQ(sg.GlobalId(0), 0u);
  EXPECT_EQ(sg.GlobalId(2), 2u);
  EXPECT_TRUE(sg.Contains(1));
  EXPECT_FALSE(sg.Contains(3));
  EXPECT_EQ(sg.LocalIndexOf(4), Subgraph::kNotLocal);
}

TEST(SubgraphTest, TracksGlobalOutDegreeAndExternalSuccessors) {
  const Graph g = TestGraph();
  const Subgraph sg = Subgraph::Induce(g, {0, 1, 2});
  const Subgraph::LocalIndex i1 = sg.LocalIndexOf(1);
  // Page 1 points at 2 (local) and 3 (external).
  EXPECT_EQ(sg.GlobalOutDegree(i1), 2u);
  EXPECT_EQ(sg.NumExternalSuccessors(i1), 1u);
  ASSERT_EQ(sg.LocalOutNeighbors(i1).size(), 1u);
  EXPECT_EQ(sg.GlobalId(sg.LocalOutNeighbors(i1)[0]), 2u);
}

TEST(SubgraphTest, EdgeCounts) {
  const Graph g = TestGraph();
  const Subgraph sg = Subgraph::Induce(g, {0, 1, 2});
  // Local edges: 0->1, 0->2, 1->2, 2->0. External: 1->3.
  EXPECT_EQ(sg.NumLocalEdges(), 4u);
  EXPECT_EQ(sg.NumExternalOutEdges(), 1u);
}

TEST(SubgraphTest, AllSuccessors) {
  const Graph g = TestGraph();
  const Subgraph sg = Subgraph::Induce(g, {0, 1});
  const std::vector<PageId> successors = sg.AllSuccessors();
  EXPECT_EQ(successors, (std::vector<PageId>{1, 2, 3}));
}

TEST(SubgraphTest, FromKnowledgeMatchesInduce) {
  const Graph g = TestGraph();
  const Subgraph induced = Subgraph::Induce(g, {0, 1, 2});
  const Subgraph built = Subgraph::FromKnowledge(
      {1, 0, 2}, {{3, 2}, {2, 1}, {0}});  // Unsorted pages and successor lists.
  ASSERT_EQ(built.NumLocalPages(), induced.NumLocalPages());
  for (Subgraph::LocalIndex i = 0; i < built.NumLocalPages(); ++i) {
    EXPECT_EQ(built.GlobalId(i), induced.GlobalId(i));
    const auto bs = built.Successors(i);
    const auto is = induced.Successors(i);
    ASSERT_EQ(bs.size(), is.size());
    for (size_t j = 0; j < bs.size(); ++j) EXPECT_EQ(bs[j], is[j]);
  }
}

TEST(SubgraphTest, MergeIsUnionOfKnowledge) {
  const Graph g = TestGraph();
  const Subgraph a = Subgraph::Induce(g, {0, 1});
  const Subgraph b = Subgraph::Induce(g, {1, 2, 3});
  const Subgraph merged = Subgraph::Merge(a, b);
  EXPECT_EQ(merged.NumLocalPages(), 4u);  // {0,1,2,3}
  // The merged fragment equals the induced fragment on the union.
  const Subgraph expected = Subgraph::Induce(g, {0, 1, 2, 3});
  EXPECT_EQ(merged.NumLocalEdges(), expected.NumLocalEdges());
  EXPECT_EQ(merged.NumExternalOutEdges(), expected.NumExternalOutEdges());
  // 3 -> 4 is still external; 1 -> 3 became local.
  const Subgraph::LocalIndex i3 = merged.LocalIndexOf(3);
  EXPECT_EQ(merged.NumExternalSuccessors(i3), 1u);
}

TEST(SubgraphTest, MergeWithSelfIsIdentity) {
  const Graph g = TestGraph();
  const Subgraph a = Subgraph::Induce(g, {0, 1, 2});
  const Subgraph merged = Subgraph::Merge(a, a);
  EXPECT_EQ(merged.NumLocalPages(), a.NumLocalPages());
  EXPECT_EQ(merged.NumLocalEdges(), a.NumLocalEdges());
}

TEST(SubgraphTest, DanglingLocalPage) {
  const Graph g = TestGraph();
  const Subgraph sg = Subgraph::Induce(g, {4});
  EXPECT_EQ(sg.GlobalOutDegree(0), 0u);
  EXPECT_EQ(sg.NumExternalSuccessors(0), 0u);
}

}  // namespace
}  // namespace graph
}  // namespace jxp
