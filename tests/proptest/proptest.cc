#include "proptest.h"

#include <cstdlib>

#include "common/random.h"

namespace jxp {
namespace proptest {

namespace {

/// Parses a non-negative decimal environment variable; nullopt when unset
/// or unparseable.
std::optional<uint64_t> EnvUint64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(parsed);
}

}  // namespace

uint64_t MasterSeed(uint64_t default_seed) {
  return EnvUint64("JXP_PROPTEST_SEED").value_or(default_seed);
}

size_t NumCases(size_t default_cases) {
  const std::optional<uint64_t> cases = EnvUint64("JXP_PROPTEST_CASES");
  if (!cases.has_value() || *cases == 0) return default_cases;
  return static_cast<size_t>(*cases);
}

uint64_t CaseSeed(uint64_t master, size_t index) {
  if (index == 0) return master;
  // SplitMix64 over master + index keeps distinct cases decorrelated while
  // CaseSeed(s, 0) == s makes the printed repro environment exact.
  SplitMix64 mixer(master + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(index));
  return mixer.Next();
}

}  // namespace proptest
}  // namespace jxp
