// Simulation-level guarantees of the fault-injection layer:
//  - the fault-off path is bit-identical to a configuration without a fault
//    plan, sequentially and in parallel at every thread count;
//  - with faults enabled, runs are bit-identical across repeats and across
//    thread counts (fault schedules are drawn on the scheduling thread);
//  - abandoned meetings consume schedule slots but never peer state;
//  - wasted-byte accounting agrees between Network and FaultInjector;
//  - the jxp.faults.* metrics mirror the injector's stats.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/simulation.h"
#include "generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proptest.h"

namespace jxp {
namespace proptest {
namespace {

using core::JxpPeer;
using core::JxpSimulation;
using core::SimulationConfig;

SimulationConfig BaseConfig(const FaultCase& c) {
  SimulationConfig config;
  config.jxp.pr_tolerance = 1e-12;
  config.jxp.pr_max_iterations = 500;
  config.jxp.merge_mode =
      c.full_merge ? core::MergeMode::kFullMerge : core::MergeMode::kLightWeight;
  config.seed = c.seed;
  return config;
}

/// Everything a run determines: per-peer scores, world scores, traffic.
struct Fingerprint {
  std::vector<std::vector<double>> scores;
  std::vector<double> world;
  double traffic_bytes = 0;
  double wasted_bytes = 0;
  size_t meetings = 0;
};

Fingerprint FingerprintOf(const JxpSimulation& sim) {
  Fingerprint fp;
  for (const JxpPeer& peer : sim.peers()) {
    fp.scores.push_back(peer.local_scores());
    fp.world.push_back(peer.world_score());
  }
  fp.traffic_bytes = sim.network().TotalTrafficBytes();
  fp.wasted_bytes = sim.network().TotalWastedBytes();
  fp.meetings = sim.meetings_done();
  return fp;
}

/// Bitwise comparison (EXPECT_EQ on doubles is exact).
CheckResult CompareFingerprints(const Fingerprint& a, const Fingerprint& b,
                                const std::string& what) {
  if (a.meetings != b.meetings) return what + ": meetings_done differs";
  if (a.traffic_bytes != b.traffic_bytes) return what + ": traffic differs";
  if (a.wasted_bytes != b.wasted_bytes) return what + ": wasted bytes differ";
  if (a.world != b.world) return what + ": world scores differ";
  if (a.scores != b.scores) return what + ": local scores differ";
  return std::nullopt;
}

TEST(FaultSimulation, FaultOffPathBitIdentical) {
  const PlanLimits no_faults;  // Every limit zero: the plan stays disabled.
  ForAll<FaultCase>(
      0x0ff0b17, 100,
      [&](uint64_t seed) {
        FaultCase c = GenerateFaultCase(seed, no_faults);
        c.num_meetings = std::min<size_t>(c.num_meetings, 40);
        return c;
      },
      [](const FaultCase& c) -> CheckResult {
        const auto run = [&](bool with_plan, size_t threads, bool parallel) {
          GeneratedWorld world = BuildWorld(c);
          SimulationConfig config = BaseConfig(c);
          config.num_threads = threads;
          if (with_plan) {
            config.faults = c.plan;          // All-zero probabilities.
            config.faults.seed = 0xdeadbeef; // Must be irrelevant when disabled.
          }
          JxpSimulation sim(world.graph, std::move(world.fragments), config);
          if (sim.fault_stats() != nullptr) {
            ADD_FAILURE() << "disabled plan created an injector";
          }
          if (parallel) {
            sim.RunMeetingsParallel(c.num_meetings);
          } else {
            sim.RunMeetings(c.num_meetings);
          }
          return FingerprintOf(sim);
        };
        if (CheckResult r = CompareFingerprints(run(false, 1, false), run(true, 1, false),
                                                "sequential no-plan vs disabled plan")) {
          return r;
        }
        if (CheckResult r = CompareFingerprints(run(true, 1, true), run(false, 4, true),
                                                "parallel 1 thread vs 4 threads")) {
          return r;
        }
        return std::nullopt;
      });
}

TEST(FaultSimulation, FaultsOnDeterministicAcrossThreadCounts) {
  PlanLimits limits;
  limits.max_drop = 0.3;
  limits.max_truncation = 0.3;
  limits.max_crash = 0.2;
  limits.max_stale_resume = 0.1;
  limits.max_unavailable = 0.3;
  ForAll<FaultCase>(
      0xde7e12b1, 100,
      [&](uint64_t seed) {
        FaultCase c = GenerateFaultCase(seed, limits);
        c.num_meetings = std::min<size_t>(c.num_meetings, 40);
        return c;
      },
      [](const FaultCase& c) -> CheckResult {
        const auto run = [&](size_t threads, bool parallel, const std::string& tag) {
          GeneratedWorld world = BuildWorld(c);
          SimulationConfig config = BaseConfig(c);
          config.num_threads = threads;
          config.faults = c.plan;
          if (c.plan.stale_resume_probability > 0) {
            config.fault_checkpoint_dir = ::testing::TempDir() + "jxp_det_" +
                                          std::to_string(c.seed) + "_" + tag;
            config.checkpoint_every = 4;
          }
          JxpSimulation sim(world.graph, std::move(world.fragments), config);
          if (parallel) {
            sim.RunMeetingsParallel(c.num_meetings);
          } else {
            sim.RunMeetings(c.num_meetings);
          }
          return FingerprintOf(sim);
        };
        if (CheckResult r = CompareFingerprints(run(1, false, "s1"), run(1, false, "s2"),
                                                "sequential repeat")) {
          return r;
        }
        if (CheckResult r = CompareFingerprints(run(1, true, "p1"), run(4, true, "p4"),
                                                "parallel 1 vs 4 threads")) {
          return r;
        }
        return std::nullopt;
      });
}

TEST(FaultSimulation, AbandonedMeetingsConsumeSlotsWithoutPeerState) {
  FaultCase c = GenerateFaultCase(31, PlanLimits{});
  c.plan.unavailable_probability = 1.0;  // Every contact attempt fails.
  c.plan.max_retries = 2;
  c.plan.probe_bytes = 64;

  GeneratedWorld world = BuildWorld(c);
  SimulationConfig config = BaseConfig(c);
  config.faults = c.plan;
  JxpSimulation sim(world.graph, std::move(world.fragments), config);

  sim.RunMeetings(10);
  EXPECT_EQ(sim.meetings_done(), 0u);
  for (const JxpPeer& peer : sim.peers()) EXPECT_EQ(peer.num_meetings(), 0u);
  ASSERT_NE(sim.fault_stats(), nullptr);
  EXPECT_EQ(sim.fault_stats()->meetings_planned, 10u);
  EXPECT_EQ(sim.fault_stats()->meetings_abandoned, 10u);
  // 1 + max_retries failed attempts per abandoned meeting, one probe each.
  EXPECT_EQ(sim.fault_stats()->unavailable_retries, 30u);
  EXPECT_EQ(sim.network().TotalWastedBytes(), 10 * 3 * 64.0);
  EXPECT_EQ(sim.network().TotalTrafficBytes(), 0.0);

  // The parallel path must terminate too (abandoned attempts consume their
  // round slots), still without any meeting.
  sim.RunMeetingsParallel(6);
  EXPECT_EQ(sim.meetings_done(), 0u);
  EXPECT_EQ(sim.fault_stats()->meetings_abandoned, 16u);
}

TEST(FaultSimulation, WastedBytesAgreeBetweenNetworkAndInjector) {
  FaultCase c = GenerateFaultCase(77, PlanLimits{});
  c.plan.message_drop_probability = 0.3;
  c.plan.truncation_probability = 0.3;
  c.plan.truncation_keep_fraction = 0.5;
  c.plan.crash_probability = 0.2;
  c.plan.unavailable_probability = 0.3;
  c.plan.max_retries = 2;

  GeneratedWorld world = BuildWorld(c);
  SimulationConfig config = BaseConfig(c);
  config.faults = c.plan;
  JxpSimulation sim(world.graph, std::move(world.fragments), config);
  sim.RunMeetings(60);

  ASSERT_NE(sim.fault_stats(), nullptr);
  EXPECT_GT(sim.fault_stats()->faulty_meetings, 0u);
  const double network_wasted = sim.network().TotalWastedBytes();
  const double injector_wasted = sim.fault_stats()->wasted_bytes;
  EXPECT_GT(network_wasted, 0.0);
  // Same contributions, different summation grouping (per peer vs global):
  // equal up to float-summation rounding.
  EXPECT_NEAR(network_wasted, injector_wasted, 1e-6 * std::max(1.0, injector_wasted));
}

TEST(FaultSimulation, CleanRunHasNoWastedTraffic) {
  FaultCase c = GenerateFaultCase(78, PlanLimits{});
  GeneratedWorld world = BuildWorld(c);
  JxpSimulation sim(world.graph, std::move(world.fragments), BaseConfig(c));
  sim.RunMeetings(30);
  EXPECT_EQ(sim.fault_stats(), nullptr);
  EXPECT_EQ(sim.network().TotalWastedBytes(), 0.0);
  const p2p::PeerTrafficSummary aggregate = sim.network().AggregateTraffic();
  EXPECT_EQ(aggregate.wasted_bytes, 0.0);
}

uint64_t SnapshotCounter(const obs::MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

TEST(FaultSimulation, FaultMetricsMirrorInjectorStats) {
  obs::MetricsRegistry::Global().Reset();
  obs::StringTraceSink sink;
  obs::ScopedTraceSink installed(&sink);  // Enables the telemetry path.

  FaultCase c = GenerateFaultCase(79, PlanLimits{});
  c.plan.message_drop_probability = 0.4;
  c.plan.truncation_probability = 0.3;
  c.plan.crash_probability = 0.2;
  c.plan.unavailable_probability = 0.4;
  c.plan.max_retries = 1;

  GeneratedWorld world = BuildWorld(c);
  SimulationConfig config = BaseConfig(c);
  config.faults = c.plan;
  JxpSimulation sim(world.graph, std::move(world.fragments), config);
  sim.RunMeetings(40);

  ASSERT_NE(sim.fault_stats(), nullptr);
  const p2p::FaultStats& stats = *sim.fault_stats();
  EXPECT_GT(stats.faulty_meetings, 0u);

  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(SnapshotCounter(snapshot, "jxp.faults.message_drops"), stats.message_drops);
  EXPECT_EQ(SnapshotCounter(snapshot, "jxp.faults.truncations"), stats.truncations);
  EXPECT_EQ(SnapshotCounter(snapshot, "jxp.faults.crashes"), stats.crashes);
  EXPECT_EQ(SnapshotCounter(snapshot, "jxp.faults.faulty_meetings"),
            stats.faulty_meetings);
  EXPECT_EQ(SnapshotCounter(snapshot, "jxp.faults.meetings_abandoned"),
            stats.meetings_abandoned);

  // Fault trace events carry the per-meeting schedule.
  size_t fault_events = 0;
  for (const std::string& line : sink.TakeLines()) {
    if (line.find("\"name\":\"fault\"") != std::string::npos) ++fault_events;
  }
  EXPECT_EQ(fault_events, stats.faulty_meetings);
}

}  // namespace
}  // namespace proptest
}  // namespace jxp
