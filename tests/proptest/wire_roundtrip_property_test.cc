// Property tests of the meeting wire format (DESIGN.md §6g): random peer
// states encode -> decode -> re-encode bit-identically, and any single-byte
// corruption of a message is rejected with an error Status — never a crash,
// never silent acceptance.

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/meeting_wire.h"
#include "core/world_node.h"
#include "graph/subgraph.h"
#include "proptest.h"
#include "synopses/hash_sketch.h"

namespace jxp {
namespace proptest {
namespace {

/// One randomized wire case: sizes only; the fragment, scores, world node
/// and sketch are all derived from `seed` as a pure function.
struct WireCase {
  uint64_t seed = 0;
  size_t num_pages = 32;
  size_t max_degree = 6;
  size_t num_world = 8;
  size_t num_dangling = 2;
  bool with_sketch = true;

  std::string Describe() const {
    std::ostringstream os;
    os << "seed=" << seed << " pages=" << num_pages << " max_degree=" << max_degree
       << " world=" << num_world << " dangling=" << num_dangling
       << " sketch=" << (with_sketch ? "yes" : "no");
    return os.str();
  }

  std::vector<WireCase> Shrink() const {
    std::vector<WireCase> candidates;
    const auto with = [this](auto mutate) {
      WireCase c = *this;
      mutate(c);
      return c;
    };
    if (num_pages > 4) {
      candidates.push_back(
          with([](WireCase& c) { c.num_pages = std::max<size_t>(4, c.num_pages / 2); }));
    }
    if (max_degree > 0) {
      candidates.push_back(with([](WireCase& c) { c.max_degree /= 2; }));
    }
    if (num_world > 0) {
      candidates.push_back(with([](WireCase& c) { c.num_world /= 2; }));
    }
    if (num_dangling > 0) {
      candidates.push_back(with([](WireCase& c) { c.num_dangling = 0; }));
    }
    if (with_sketch) {
      candidates.push_back(with([](WireCase& c) { c.with_sketch = false; }));
    }
    return candidates;
  }
};

WireCase GenerateWireCase(uint64_t seed) {
  WireCase c;
  c.seed = seed;
  Random rng(seed ^ 0x31c0dec5ULL);
  c.num_pages = 4 + rng.NextBounded(180);    // 4..183
  c.max_degree = rng.NextBounded(9);         // 0..8
  c.num_world = rng.NextBounded(30);         // 0..29
  c.num_dangling = rng.NextBounded(5);       // 0..4
  c.with_sketch = rng.NextBool(0.7);
  return c;
}

/// Draws `count` distinct sorted ids from [0, universe).
std::vector<graph::PageId> SortedDistinctIds(Random& rng, size_t count,
                                             size_t universe) {
  std::vector<graph::PageId> ids;
  for (size_t index : rng.SampleWithoutReplacement(universe, count)) {
    ids.push_back(static_cast<graph::PageId>(index));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// The case's full peer-state snapshot, derived deterministically.
struct WireState {
  graph::Subgraph fragment;
  std::vector<double> scores;
  core::WorldNode world;
  std::shared_ptr<synopses::HashSketch> sketch;
};

WireState BuildState(const WireCase& c) {
  WireState state;
  Random rng(c.seed ^ 0x57a7e5eedULL);
  const size_t universe = 4 * c.num_pages + 64;

  std::vector<graph::PageId> pages = SortedDistinctIds(rng, c.num_pages, universe);
  std::vector<std::vector<graph::PageId>> successors;
  for (size_t i = 0; i < pages.size(); ++i) {
    const size_t degree = rng.NextBounded(c.max_degree + 1);
    successors.push_back(SortedDistinctIds(rng, degree, universe));
  }
  state.fragment =
      graph::Subgraph::FromKnowledge(std::move(pages), std::move(successors));

  state.scores.resize(c.num_pages);
  for (double& s : state.scores) s = rng.NextDouble();

  // World entries point at pages outside the id universe used above, so they
  // never collide with fragment ids; targets come from the fragment.
  std::vector<graph::PageId> world_pages =
      SortedDistinctIds(rng, c.num_world + c.num_dangling, universe);
  for (auto& p : world_pages) p += static_cast<graph::PageId>(universe);
  for (size_t i = 0; i < c.num_world; ++i) {
    const size_t num_targets = 1 + rng.NextBounded(std::min<size_t>(4, c.num_pages));
    std::vector<graph::PageId> targets;
    for (size_t index : rng.SampleWithoutReplacement(c.num_pages, num_targets)) {
      targets.push_back(state.fragment.GlobalId(
          static_cast<graph::Subgraph::LocalIndex>(index)));
    }
    std::sort(targets.begin(), targets.end());
    const uint32_t out_degree =
        static_cast<uint32_t>(num_targets + rng.NextBounded(20));
    state.world.Observe(world_pages[i], out_degree, rng.NextDouble(), targets,
                        core::CombineMode::kTakeMax);
  }
  for (size_t i = 0; i < c.num_dangling; ++i) {
    state.world.ObserveDangling(world_pages[c.num_world + i], rng.NextDouble(),
                                core::CombineMode::kTakeMax);
  }

  if (c.with_sketch) {
    state.sketch = std::make_shared<synopses::HashSketch>(32);
    const size_t keys = 1 + rng.NextBounded(300);
    for (size_t i = 0; i < keys; ++i) state.sketch->Add(rng.NextUint64());
  }
  return state;
}

std::vector<uint8_t> Encode(const WireState& state) {
  return core::EncodeMeetingMessage(state.fragment, state.scores, state.world,
                                    state.sketch.get());
}

TEST(WireRoundTripProperty, EncodeDecodeReencodeIsBitIdentical) {
  ForAll<WireCase>(
      0x71e0aa01, 40, GenerateWireCase, [](const WireCase& c) -> CheckResult {
        const WireState state = BuildState(c);
        const std::vector<uint8_t> bytes = Encode(state);
        if (bytes.empty()) return "encoded message is empty";

        const core::DecodedMeetingMessage decoded = core::DecodeMeetingMessage(bytes);
        if (!decoded.error.ok()) {
          return "clean decode failed: " + decoded.error.ToString();
        }
        if (decoded.bytes_consumed != bytes.size()) {
          return "clean decode left trailing bytes";
        }
        if (decoded.fragment == nullptr) return "decode produced no fragment";
        if (decoded.fragment->NumLocalPages() != state.fragment.NumLocalPages()) {
          return "page count changed across the wire";
        }
        if (decoded.world.NumEntries() != state.world.NumEntries() ||
            decoded.world.NumLinks() != state.world.NumLinks() ||
            decoded.world.dangling_scores().size() !=
                state.world.dangling_scores().size()) {
          return "world knowledge changed across the wire";
        }
        for (size_t i = 0; i < decoded.scores.size(); ++i) {
          const auto local = static_cast<graph::Subgraph::LocalIndex>(i);
          if (decoded.scores[i] > state.scores[state.fragment.LocalIndexOf(
                  decoded.fragment->GlobalId(local))]) {
            return "a decoded score exceeds the sender's exact double";
          }
        }

        // Quantization happened once, on the first encode; a second trip
        // through the codec must be the identity on the bytes.
        WireState rebuilt;
        rebuilt.fragment = *decoded.fragment;
        rebuilt.scores = decoded.scores;
        rebuilt.world = decoded.world;
        if (decoded.sketch != nullptr) {
          rebuilt.sketch = std::make_shared<synopses::HashSketch>(*decoded.sketch);
        }
        const std::vector<uint8_t> again = Encode(rebuilt);
        if (again != bytes) return "re-encoded bytes differ from the original";
        return std::nullopt;
      });
}

TEST(WireRoundTripProperty, AnySingleByteCorruptionIsRejected) {
  ForAll<WireCase>(
      0xc0bb7e02, 30, GenerateWireCase, [](const WireCase& c) -> CheckResult {
        const WireState state = BuildState(c);
        const std::vector<uint8_t> bytes = Encode(state);
        if (bytes.empty()) return "encoded message is empty";

        // A handful of deterministic corruption positions per case; across
        // cases this covers headers, payloads and frame boundaries.
        Random rng(c.seed ^ 0xbadbeefULL);
        for (int trial = 0; trial < 16; ++trial) {
          std::vector<uint8_t> corrupt = bytes;
          const size_t at = rng.NextBounded(corrupt.size());
          const uint8_t flip = static_cast<uint8_t>(1u << rng.NextBounded(8));
          corrupt[at] ^= flip;

          wire::DecodedMeeting strict;
          const Status status = wire::DecodeMeetingStrict(corrupt, &strict);
          if (status.ok()) {
            std::ostringstream os;
            os << "corruption at byte " << at << " (bit "
               << static_cast<int>(flip) << ") was not detected";
            return os.str();
          }
          // The lenient decoder must stop before the damage, never crash,
          // and never consume past the corrupted byte's frame.
          const core::DecodedMeetingMessage lenient =
              core::DecodeMeetingMessage(corrupt);
          if (lenient.error.ok()) return "lenient decode missed the corruption";
          if (lenient.bytes_consumed > corrupt.size()) {
            return "lenient decode consumed past the buffer";
          }
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace proptest
}  // namespace jxp
