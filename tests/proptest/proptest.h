#ifndef JXP_TESTS_PROPTEST_PROPTEST_H_
#define JXP_TESTS_PROPTEST_PROPTEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace jxp {
namespace proptest {

/// Minimal property-testing harness: generate N randomized cases from a
/// master seed, check a property on each, and on failure greedily shrink the
/// case to a smaller counterexample while printing a one-line repro seed.
///
/// Determinism contract: a case is a small parameter struct (sizes, seeds,
/// probabilities) and everything heavy — graph, fragments, fault schedule —
/// is derived from it as a pure function, so re-running with the printed
/// `JXP_PROPTEST_SEED=<seed> JXP_PROPTEST_CASES=1` environment reproduces
/// the failing case exactly.
///
/// Environment overrides:
///   JXP_PROPTEST_SEED   master seed (decimal); default is per-property.
///   JXP_PROPTEST_CASES  number of randomized cases per property.

/// The master seed: JXP_PROPTEST_SEED when set and parseable, else
/// `default_seed`.
uint64_t MasterSeed(uint64_t default_seed);

/// The case count: JXP_PROPTEST_CASES when set and parseable (> 0), else
/// `default_cases`.
size_t NumCases(size_t default_cases);

/// Seed of case `index` under `master`. Identity at index 0, so the printed
/// repro line (seed of the failing case, 1 case) replays exactly that case.
uint64_t CaseSeed(uint64_t master, size_t index);

/// A property check's verdict: nullopt = holds, otherwise a description of
/// the violation.
using CheckResult = std::optional<std::string>;

/// Runs the property `check` over `NumCases(default_cases)` cases generated
/// by `make(CaseSeed(master, i))`. On the first failing case, shrinks it via
/// Case::Shrink() (greedy descent, at most `max_shrink_evals` re-checks) and
/// reports both the original and the shrunk counterexample through
/// ADD_FAILURE, including the one-line repro environment.
///
/// Case requirements:
///   std::string Describe() const;
///   std::vector<Case> Shrink() const;   // candidate smaller cases
template <typename Case, typename MakeFn, typename CheckFn>
void ForAll(uint64_t default_seed, size_t default_cases, MakeFn make, CheckFn check,
            size_t max_shrink_evals = 64) {
  const uint64_t master = MasterSeed(default_seed);
  const size_t cases = NumCases(default_cases);
  for (size_t i = 0; i < cases; ++i) {
    const uint64_t seed = CaseSeed(master, i);
    const Case original = make(seed);
    CheckResult failure = check(original);
    if (!failure.has_value()) continue;

    Case smallest = original;
    std::string smallest_failure = *failure;
    size_t evals = 0;
    bool improved = true;
    while (improved && evals < max_shrink_evals) {
      improved = false;
      for (const Case& candidate : smallest.Shrink()) {
        if (evals >= max_shrink_evals) break;
        ++evals;
        if (CheckResult f = check(candidate); f.has_value()) {
          smallest = candidate;
          smallest_failure = *f;
          improved = true;
          break;  // Restart shrinking from the smaller counterexample.
        }
      }
    }
    // The one-line repro carries the generator parameters, not just the
    // seed: a failure stays diagnosable from the log alone even when the
    // generator has since changed and the seed no longer derives the same
    // case.
    ADD_FAILURE() << "property failed on case " << i << "/" << cases
                  << "\n  repro: JXP_PROPTEST_SEED=" << seed
                  << " JXP_PROPTEST_CASES=1  # " << original.Describe()
                  << "\n    " << *failure
                  << "\n  shrunk (" << evals
                  << " evals): " << smallest.Describe() << "\n    " << smallest_failure;
    return;  // One counterexample per property run.
  }
}

}  // namespace proptest
}  // namespace jxp

#endif  // JXP_TESTS_PROPTEST_PROPTEST_H_
