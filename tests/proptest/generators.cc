#include "generators.h"

#include <algorithm>
#include <sstream>

#include "common/random.h"

namespace jxp {
namespace proptest {

std::string FaultCase::Describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " nodes=" << num_nodes << " peers=" << num_peers
     << " meetings=" << num_meetings << " merge=" << (full_merge ? "full" : "light")
     << " drop=" << plan.message_drop_probability
     << " trunc=" << plan.truncation_probability << "@" << plan.truncation_keep_fraction
     << " crash=" << plan.crash_probability
     << " stale=" << plan.stale_resume_probability
     << " unavail=" << plan.unavailable_probability << " retries=" << plan.max_retries
     << " fault_seed=" << plan.seed;
  return os.str();
}

std::vector<FaultCase> FaultCase::Shrink() const {
  std::vector<FaultCase> candidates;
  const auto with = [this](auto mutate) {
    FaultCase c = *this;
    mutate(c);
    return c;
  };
  if (num_nodes > 16) {
    candidates.push_back(with([](FaultCase& c) {
      c.num_nodes = std::max<size_t>(16, c.num_nodes / 2);
    }));
  }
  if (num_peers > 2) {
    candidates.push_back(with([](FaultCase& c) {
      c.num_peers = std::max<size_t>(2, c.num_peers / 2);
    }));
  }
  if (num_meetings > 10) {
    candidates.push_back(with([](FaultCase& c) {
      c.num_meetings = std::max<size_t>(10, c.num_meetings / 2);
    }));
  }
  if (full_merge) {
    candidates.push_back(with([](FaultCase& c) { c.full_merge = false; }));
  }
  if (plan.message_drop_probability > 0) {
    candidates.push_back(with([](FaultCase& c) { c.plan.message_drop_probability = 0; }));
  }
  if (plan.truncation_probability > 0) {
    candidates.push_back(with([](FaultCase& c) { c.plan.truncation_probability = 0; }));
  }
  if (plan.crash_probability > 0) {
    candidates.push_back(with([](FaultCase& c) { c.plan.crash_probability = 0; }));
  }
  if (plan.stale_resume_probability > 0) {
    candidates.push_back(with([](FaultCase& c) { c.plan.stale_resume_probability = 0; }));
  }
  if (plan.unavailable_probability > 0) {
    candidates.push_back(with([](FaultCase& c) { c.plan.unavailable_probability = 0; }));
  }
  return candidates;
}

FaultCase GenerateFaultCase(uint64_t seed, const PlanLimits& limits) {
  FaultCase c;
  c.seed = seed;
  Random rng(seed ^ 0x5eedf001cafeULL);
  c.num_nodes = 16 + rng.NextBounded(41);      // 16..56
  c.num_peers = 2 + rng.NextBounded(4);        // 2..5
  c.num_meetings = 30 + rng.NextBounded(91);   // 30..120
  c.full_merge = rng.NextBool(0.25);
  c.plan.message_drop_probability = limits.max_drop * rng.NextDouble();
  c.plan.truncation_probability = limits.max_truncation * rng.NextDouble();
  c.plan.truncation_keep_fraction = 0.2 + 0.8 * rng.NextDouble();
  c.plan.crash_probability = limits.max_crash * rng.NextDouble();
  c.plan.stale_resume_probability = limits.max_stale_resume * rng.NextDouble();
  c.plan.unavailable_probability = limits.max_unavailable * rng.NextDouble();
  c.plan.max_retries = static_cast<int>(rng.NextBounded(4));  // 0..3
  c.plan.seed = SplitMix64(seed ^ 0xfa0175ULL).Next();
  return c;
}

namespace {

GeneratedWorld BuildWorldImpl(uint64_t seed, size_t num_nodes, size_t num_peers) {
  GeneratedWorld world;
  Random rng(seed ^ 0x6e57a9b1ULL);
  world.graph = graph::BarabasiAlbert(num_nodes, 3, rng);
  // Overlapping fragments that jointly cover the graph (the theorem-test
  // idiom): every page goes to one random peer, then up to two extra
  // replicas land on random peers with probability 1/2 each.
  world.fragments.assign(num_peers, {});
  for (graph::PageId p = 0; p < num_nodes; ++p) {
    world.fragments[rng.NextBounded(num_peers)].push_back(p);
    for (int extra = 0; extra < 2; ++extra) {
      if (rng.NextBool(0.5)) {
        world.fragments[rng.NextBounded(num_peers)].push_back(p);
      }
    }
  }
  for (auto& fragment : world.fragments) {
    if (fragment.empty()) {
      fragment.push_back(static_cast<graph::PageId>(rng.NextBounded(num_nodes)));
    }
  }
  return world;
}

}  // namespace

GeneratedWorld BuildWorld(const FaultCase& c) {
  return BuildWorldImpl(c.seed, c.num_nodes, c.num_peers);
}

std::string ChurnCase::Describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " nodes=" << num_nodes << " peers=" << num_peers
     << " events=" << num_events << " churn=" << churn_probability
     << " merge=" << (full_merge ? "full" : "light");
  if (plan.Enabled()) {
    os << " drop=" << plan.message_drop_probability
       << " trunc=" << plan.truncation_probability
       << " crash=" << plan.crash_probability << " fault_seed=" << plan.seed;
  }
  return os.str();
}

std::vector<ChurnCase> ChurnCase::Shrink() const {
  std::vector<ChurnCase> candidates;
  const auto with = [this](auto mutate) {
    ChurnCase c = *this;
    mutate(c);
    return c;
  };
  if (num_events > 8) {
    candidates.push_back(with([](ChurnCase& c) {
      c.num_events = std::max<size_t>(8, c.num_events / 2);
    }));
  }
  if (num_nodes > 16) {
    candidates.push_back(with([](ChurnCase& c) {
      c.num_nodes = std::max<size_t>(16, c.num_nodes / 2);
    }));
  }
  if (num_peers > 2) {
    candidates.push_back(with([](ChurnCase& c) {
      c.num_peers = std::max<size_t>(2, c.num_peers / 2);
    }));
  }
  if (churn_probability > 0) {
    candidates.push_back(with([](ChurnCase& c) { c.churn_probability = 0; }));
  }
  if (full_merge) {
    candidates.push_back(with([](ChurnCase& c) { c.full_merge = false; }));
  }
  if (plan.message_drop_probability > 0) {
    candidates.push_back(with([](ChurnCase& c) { c.plan.message_drop_probability = 0; }));
  }
  if (plan.truncation_probability > 0) {
    candidates.push_back(with([](ChurnCase& c) { c.plan.truncation_probability = 0; }));
  }
  if (plan.crash_probability > 0) {
    candidates.push_back(with([](ChurnCase& c) { c.plan.crash_probability = 0; }));
  }
  return candidates;
}

ChurnCase GenerateChurnCase(uint64_t seed, const PlanLimits& limits) {
  ChurnCase c;
  c.seed = seed;
  Random rng(seed ^ 0xc4125eedULL);
  c.num_nodes = 16 + rng.NextBounded(41);    // 16..56
  c.num_peers = 2 + rng.NextBounded(4);      // 2..5
  c.num_events = 24 + rng.NextBounded(73);   // 24..96
  c.churn_probability = 0.1 + 0.3 * rng.NextDouble();
  c.full_merge = rng.NextBool(0.25);
  c.plan.message_drop_probability = limits.max_drop * rng.NextDouble();
  c.plan.truncation_probability = limits.max_truncation * rng.NextDouble();
  c.plan.truncation_keep_fraction = 0.2 + 0.8 * rng.NextDouble();
  c.plan.crash_probability = limits.max_crash * rng.NextDouble();
  c.plan.seed = SplitMix64(seed ^ 0xc412fa17ULL).Next();
  return c;
}

GeneratedWorld BuildWorld(const ChurnCase& c) {
  return BuildWorldImpl(c.seed, c.num_nodes, c.num_peers);
}

std::vector<ChurnEvent> BuildChurnSchedule(const ChurnCase& c) {
  std::vector<ChurnEvent> schedule;
  schedule.reserve(c.num_events);
  Random rng(c.seed ^ 0x5c4ed01eULL);
  for (size_t i = 0; i < c.num_events; ++i) {
    ChurnEvent e;
    e.seed = rng.NextUint64();
    if (c.num_peers >= 2 && !rng.NextBool(c.churn_probability)) {
      e.kind = ChurnEvent::Kind::kMeeting;
      e.peer_a = rng.NextBounded(c.num_peers);
      e.peer_b = rng.NextBounded(c.num_peers - 1);
      if (e.peer_b >= e.peer_a) ++e.peer_b;
    } else {
      switch (rng.NextBounded(3)) {
        case 0: e.kind = ChurnEvent::Kind::kFragmentAdd; break;
        case 1: e.kind = ChurnEvent::Kind::kFragmentRemove; break;
        default: e.kind = ChurnEvent::Kind::kFragmentEdit; break;
      }
      e.peer_a = rng.NextBounded(c.num_peers);
    }
    schedule.push_back(e);
  }
  return schedule;
}

std::vector<graph::PageId> ApplyChurnEvent(const ChurnEvent& e, size_t num_nodes,
                                           std::vector<graph::PageId> pages) {
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  Random rng(e.seed ^ 0xf4a63e47ULL);
  const auto add_one = [&] {
    if (pages.size() >= num_nodes) return;
    // Pick the k-th page (by id) the peer does not hold; `pages` is sorted.
    size_t k = rng.NextBounded(num_nodes - pages.size());
    size_t held = 0;
    for (graph::PageId p = 0; p < num_nodes; ++p) {
      if (held < pages.size() && pages[held] == p) {
        ++held;
        continue;
      }
      if (k == 0) {
        pages.insert(pages.begin() + static_cast<ptrdiff_t>(held), p);
        return;
      }
      --k;
    }
  };
  const auto remove_one = [&] {
    if (pages.size() <= 1) return;  // A peer never drops its last page.
    pages.erase(pages.begin() + static_cast<ptrdiff_t>(rng.NextBounded(pages.size())));
  };
  switch (e.kind) {
    case ChurnEvent::Kind::kMeeting:
      break;
    case ChurnEvent::Kind::kFragmentAdd:
      add_one();
      break;
    case ChurnEvent::Kind::kFragmentRemove:
      remove_one();
      break;
    case ChurnEvent::Kind::kFragmentEdit:
      remove_one();
      add_one();
      break;
  }
  return pages;
}

}  // namespace proptest
}  // namespace jxp
