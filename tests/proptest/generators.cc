#include "generators.h"

#include <algorithm>
#include <sstream>

#include "common/random.h"

namespace jxp {
namespace proptest {

std::string FaultCase::Describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " nodes=" << num_nodes << " peers=" << num_peers
     << " meetings=" << num_meetings << " merge=" << (full_merge ? "full" : "light")
     << " drop=" << plan.message_drop_probability
     << " trunc=" << plan.truncation_probability << "@" << plan.truncation_keep_fraction
     << " crash=" << plan.crash_probability
     << " stale=" << plan.stale_resume_probability
     << " unavail=" << plan.unavailable_probability << " retries=" << plan.max_retries
     << " fault_seed=" << plan.seed;
  return os.str();
}

std::vector<FaultCase> FaultCase::Shrink() const {
  std::vector<FaultCase> candidates;
  const auto with = [this](auto mutate) {
    FaultCase c = *this;
    mutate(c);
    return c;
  };
  if (num_nodes > 16) {
    candidates.push_back(with([](FaultCase& c) {
      c.num_nodes = std::max<size_t>(16, c.num_nodes / 2);
    }));
  }
  if (num_peers > 2) {
    candidates.push_back(with([](FaultCase& c) {
      c.num_peers = std::max<size_t>(2, c.num_peers / 2);
    }));
  }
  if (num_meetings > 10) {
    candidates.push_back(with([](FaultCase& c) {
      c.num_meetings = std::max<size_t>(10, c.num_meetings / 2);
    }));
  }
  if (full_merge) {
    candidates.push_back(with([](FaultCase& c) { c.full_merge = false; }));
  }
  if (plan.message_drop_probability > 0) {
    candidates.push_back(with([](FaultCase& c) { c.plan.message_drop_probability = 0; }));
  }
  if (plan.truncation_probability > 0) {
    candidates.push_back(with([](FaultCase& c) { c.plan.truncation_probability = 0; }));
  }
  if (plan.crash_probability > 0) {
    candidates.push_back(with([](FaultCase& c) { c.plan.crash_probability = 0; }));
  }
  if (plan.stale_resume_probability > 0) {
    candidates.push_back(with([](FaultCase& c) { c.plan.stale_resume_probability = 0; }));
  }
  if (plan.unavailable_probability > 0) {
    candidates.push_back(with([](FaultCase& c) { c.plan.unavailable_probability = 0; }));
  }
  return candidates;
}

FaultCase GenerateFaultCase(uint64_t seed, const PlanLimits& limits) {
  FaultCase c;
  c.seed = seed;
  Random rng(seed ^ 0x5eedf001cafeULL);
  c.num_nodes = 16 + rng.NextBounded(41);      // 16..56
  c.num_peers = 2 + rng.NextBounded(4);        // 2..5
  c.num_meetings = 30 + rng.NextBounded(91);   // 30..120
  c.full_merge = rng.NextBool(0.25);
  c.plan.message_drop_probability = limits.max_drop * rng.NextDouble();
  c.plan.truncation_probability = limits.max_truncation * rng.NextDouble();
  c.plan.truncation_keep_fraction = 0.2 + 0.8 * rng.NextDouble();
  c.plan.crash_probability = limits.max_crash * rng.NextDouble();
  c.plan.stale_resume_probability = limits.max_stale_resume * rng.NextDouble();
  c.plan.unavailable_probability = limits.max_unavailable * rng.NextDouble();
  c.plan.max_retries = static_cast<int>(rng.NextBounded(4));  // 0..3
  c.plan.seed = SplitMix64(seed ^ 0xfa0175ULL).Next();
  return c;
}

GeneratedWorld BuildWorld(const FaultCase& c) {
  GeneratedWorld world;
  Random rng(c.seed ^ 0x6e57a9b1ULL);
  world.graph = graph::BarabasiAlbert(c.num_nodes, 3, rng);
  // Overlapping fragments that jointly cover the graph (the theorem-test
  // idiom): every page goes to one random peer, then up to two extra
  // replicas land on random peers with probability 1/2 each.
  world.fragments.assign(c.num_peers, {});
  for (graph::PageId p = 0; p < c.num_nodes; ++p) {
    world.fragments[rng.NextBounded(c.num_peers)].push_back(p);
    for (int extra = 0; extra < 2; ++extra) {
      if (rng.NextBool(0.5)) {
        world.fragments[rng.NextBounded(c.num_peers)].push_back(p);
      }
    }
  }
  for (auto& fragment : world.fragments) {
    if (fragment.empty()) {
      fragment.push_back(static_cast<graph::PageId>(rng.NextBounded(c.num_nodes)));
    }
  }
  return world;
}

}  // namespace proptest
}  // namespace jxp
