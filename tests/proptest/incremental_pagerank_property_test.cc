// Differential property tests of the incremental (Gauss–Southwell
// residual-push) local PageRank against the exact power-iteration solver,
// over randomized churn schedules (meetings interleaved with fragment
// add/remove/edit events — DESIGN.md §6j):
//
//   Agreement:    after every event, the incremental arm's scores match a
//                 lockstep exact-solver arm within a tolerance derived from
//                 the solver's residual bound;
//   Safety        (Thm 5.3): with the incremental path on, scores still
//                 never overestimate the true PageRank after lower-bound
//                 rounding (a slack covering the churn-transient overshoot
//                 the exact path already exhibits — see kSafetySlack);
//   Determinism:  a full churn schedule replays bit-identically at 1 and 4
//                 threads, with the incremental path off (the pre-existing
//                 guarantee must survive the new dispatch) and on;
//   Fallback:     dirty_fallback_fraction <= 0 forces every solve through
//                 the fallback, which must be bit-identical to
//                 incremental.enabled = false after every event.
//
// Together the properties run 100+ randomized schedules per suite
// invocation; failures print a one-line JXP_PROPTEST_SEED repro with the
// case's generator parameters.

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/jxp_peer.h"
#include "core/simulation.h"
#include "generators.h"
#include "graph/subgraph.h"
#include "pagerank/pagerank.h"
#include "proptest.h"

namespace jxp {
namespace proptest {
namespace {

using core::JxpOptions;
using core::JxpPeer;
using core::JxpSimulation;
using core::SimulationConfig;

/// Solve tolerance of both arms. The incremental solver's L1 drift from the
/// exact fixed point is bounded by tolerance * (n+1) / (1 - damping) per
/// solve — about 4e-11 at the generator's largest case.
constexpr double kPrTolerance = 1e-13;
/// Per-score agreement bound between the arms after any event. Each arm
/// drifts from the common fixed point by the per-solve bound above, and
/// take-max combines propagate (but never amplify) the gap across events.
constexpr double kAgreementTolerance = 5e-8;
/// Lower-bound rounding of the never-overestimate check (Thm 5.3). Thm 5.3
/// assumes fixed fragments; a re-crawl transfers world-node estimates that
/// are transiently stale, so churn schedules overshoot pi by up to ~2e-8
/// even on the exact path (measured over 600 schedules; identical worst
/// case with the incremental path on). 1e-6 gives 50x margin over that
/// transient while staying four orders below typical score magnitudes.
constexpr double kSafetySlack = 1e-6;

JxpOptions BaseOptions(const ChurnCase& c, bool incremental) {
  JxpOptions options;
  options.pr_tolerance = kPrTolerance;
  options.pr_max_iterations = 2000;
  options.merge_mode =
      c.full_merge ? core::MergeMode::kFullMerge : core::MergeMode::kLightWeight;
  options.combine_mode = core::CombineMode::kTakeMax;
  options.incremental.enabled = incremental;
  return options;
}

std::vector<JxpPeer> BuildPeers(const GeneratedWorld& world, const JxpOptions& options) {
  std::vector<JxpPeer> peers;
  peers.reserve(world.fragments.size());
  for (size_t p = 0; p < world.fragments.size(); ++p) {
    peers.emplace_back(static_cast<p2p::PeerId>(p),
                       graph::Subgraph::Induce(world.graph, world.fragments[p]),
                       world.graph.NumNodes(), options);
  }
  return peers;
}

/// Replays the case's schedule over `peers`, tracking each peer's page set,
/// and calls `after_event(event_index)` after every event. Returns the
/// callback's first failure.
template <typename Fn>
CheckResult ReplaySchedule(const ChurnCase& c, const GeneratedWorld& world,
                           std::vector<JxpPeer>& peers, Fn after_event) {
  std::vector<std::vector<graph::PageId>> pages = world.fragments;
  const std::vector<ChurnEvent> schedule = BuildChurnSchedule(c);
  for (size_t i = 0; i < schedule.size(); ++i) {
    const ChurnEvent& e = schedule[i];
    if (e.kind == ChurnEvent::Kind::kMeeting) {
      JxpPeer::Meet(peers[e.peer_a], peers[e.peer_b]);
    } else {
      pages[e.peer_a] = ApplyChurnEvent(e, c.num_nodes, std::move(pages[e.peer_a]));
      peers[e.peer_a].ReplaceFragment(
          graph::Subgraph::Induce(world.graph, pages[e.peer_a]));
    }
    if (CheckResult failure = after_event(i)) return failure;
  }
  return std::nullopt;
}

/// Bit-exact peer-state comparison (scores and world score) between two
/// arms; `label` names the arms in the failure message.
CheckResult ComparePeersExactly(const std::vector<JxpPeer>& a,
                                const std::vector<JxpPeer>& b, const char* label,
                                size_t event) {
  for (size_t p = 0; p < a.size(); ++p) {
    const std::vector<double>& sa = a[p].local_scores();
    const std::vector<double>& sb = b[p].local_scores();
    const double wa = a[p].world_score();
    const double wb = b[p].world_score();
    if (sa.size() != sb.size() ||
        std::memcmp(sa.data(), sb.data(), sa.size() * sizeof(double)) != 0 ||
        std::memcmp(&wa, &wb, sizeof(double)) != 0) {
      std::ostringstream os;
      os << label << ": peer " << p << " diverged bit-wise after event " << event;
      return os.str();
    }
  }
  return std::nullopt;
}

TEST(IncrementalPageRankProperty, AgreesWithExactOracleUnderChurn) {
  ForAll<ChurnCase>(
      0x16c4e3a1, 40, [](uint64_t seed) { return GenerateChurnCase(seed); },
      [](const ChurnCase& c) -> CheckResult {
        const GeneratedWorld world = BuildWorld(c);
        std::vector<JxpPeer> incremental = BuildPeers(world, BaseOptions(c, true));
        std::vector<JxpPeer> exact = BuildPeers(world, BaseOptions(c, false));
        // Lockstep: replay the identical schedule on the exact arm from
        // inside the incremental arm's per-event hook, then compare.
        std::vector<std::vector<graph::PageId>> exact_pages = world.fragments;
        const std::vector<ChurnEvent> schedule = BuildChurnSchedule(c);
        return ReplaySchedule(
            c, world, incremental, [&](size_t i) -> CheckResult {
              const ChurnEvent& e = schedule[i];
              if (e.kind == ChurnEvent::Kind::kMeeting) {
                JxpPeer::Meet(exact[e.peer_a], exact[e.peer_b]);
              } else {
                exact_pages[e.peer_a] =
                    ApplyChurnEvent(e, c.num_nodes, std::move(exact_pages[e.peer_a]));
                exact[e.peer_a].ReplaceFragment(
                    graph::Subgraph::Induce(world.graph, exact_pages[e.peer_a]));
              }
              for (size_t p = 0; p < incremental.size(); ++p) {
                const std::vector<double>& si = incremental[p].local_scores();
                const std::vector<double>& se = exact[p].local_scores();
                if (si.size() != se.size()) {
                  return "arms disagree on fragment size";
                }
                for (size_t k = 0; k < si.size(); ++k) {
                  if (std::abs(si[k] - se[k]) > kAgreementTolerance) {
                    std::ostringstream os;
                    os << "peer " << p << " page index " << k << " incremental="
                       << si[k] << " exact=" << se[k] << " after event " << i;
                    return os.str();
                  }
                }
                if (std::abs(incremental[p].world_score() - exact[p].world_score()) >
                    kAgreementTolerance) {
                  std::ostringstream os;
                  os << "peer " << p << " world score incremental="
                     << incremental[p].world_score() << " exact="
                     << exact[p].world_score() << " after event " << i;
                  return os.str();
                }
              }
              return std::nullopt;
            });
      });
}

TEST(IncrementalPageRankProperty, NeverOverestimatesUnderChurn) {
  ForAll<ChurnCase>(
      0x16c45afe, 30, [](uint64_t seed) { return GenerateChurnCase(seed); },
      [](const ChurnCase& c) -> CheckResult {
        const GeneratedWorld world = BuildWorld(c);
        // Churn re-partitions a fixed global graph, so the true PageRank —
        // the Thm 5.3 upper bound — is one computation per case.
        pagerank::PageRankOptions pr;
        pr.tolerance = 1e-14;
        pr.max_iterations = 2000;
        const pagerank::PageRankResult truth = pagerank::ComputePageRank(world.graph, pr);
        std::vector<JxpPeer> peers = BuildPeers(world, BaseOptions(c, true));
        return ReplaySchedule(c, world, peers, [&](size_t i) -> CheckResult {
          for (const JxpPeer& peer : peers) {
            const graph::Subgraph& fragment = peer.fragment();
            for (graph::Subgraph::LocalIndex k = 0; k < fragment.NumLocalPages(); ++k) {
              const double alpha = peer.local_scores()[k];
              const double pi = truth.scores[fragment.GlobalId(k)];
              if (!(alpha > 0) || alpha > pi + kSafetySlack) {
                std::ostringstream os;
                os.precision(17);
                os << "page " << fragment.GlobalId(k) << " of peer " << peer.id()
                   << " has alpha=" << alpha << " vs pi=" << pi << " after event " << i;
                return os.str();
              }
            }
            if (peer.world_score() >= 1.0 || !(peer.world_score() > 0)) {
              std::ostringstream os;
              os << "world score " << peer.world_score() << " of peer " << peer.id()
                 << " outside (0, 1) after event " << i;
              return os.str();
            }
          }
          return std::nullopt;
        });
      });
}

TEST(IncrementalPageRankProperty, ForcedFallbackBitIdenticalToDisabled) {
  ForAll<ChurnCase>(
      0x16c4fa11, 30, [](uint64_t seed) { return GenerateChurnCase(seed); },
      [](const ChurnCase& c) -> CheckResult {
        const GeneratedWorld world = BuildWorld(c);
        JxpOptions forced = BaseOptions(c, true);
        forced.incremental.dirty_fallback_fraction = 0;  // Every solve falls back.
        std::vector<JxpPeer> fallback = BuildPeers(world, forced);
        std::vector<JxpPeer> disabled = BuildPeers(world, BaseOptions(c, false));
        std::vector<std::vector<graph::PageId>> disabled_pages = world.fragments;
        const std::vector<ChurnEvent> schedule = BuildChurnSchedule(c);
        return ReplaySchedule(
            c, world, fallback, [&](size_t i) -> CheckResult {
              const ChurnEvent& e = schedule[i];
              if (e.kind == ChurnEvent::Kind::kMeeting) {
                JxpPeer::Meet(disabled[e.peer_a], disabled[e.peer_b]);
              } else {
                disabled_pages[e.peer_a] = ApplyChurnEvent(
                    e, c.num_nodes, std::move(disabled_pages[e.peer_a]));
                disabled[e.peer_a].ReplaceFragment(
                    graph::Subgraph::Induce(world.graph, disabled_pages[e.peer_a]));
              }
              return ComparePeersExactly(fallback, disabled,
                                         "forced-fallback vs disabled", i);
            });
      });
}

/// Replays the case's schedule through JxpSimulation (meeting runs batched
/// through RunMeetingsParallel, fragment events through
/// JxpSimulation::ReplaceFragment) and returns the final simulation.
JxpSimulation ReplayParallel(const ChurnCase& c, const GeneratedWorld& world,
                             bool incremental, size_t num_threads) {
  SimulationConfig config;
  config.jxp = BaseOptions(c, incremental);
  config.seed = c.seed;
  config.num_threads = num_threads;
  config.baseline_tolerance = 1e-12;
  JxpSimulation sim(world.graph, world.fragments, config);
  std::vector<std::vector<graph::PageId>> pages = world.fragments;
  size_t pending_meetings = 0;
  for (const ChurnEvent& e : BuildChurnSchedule(c)) {
    if (e.kind == ChurnEvent::Kind::kMeeting) {
      // The simulation draws its own meeting pairs; only the count matters
      // for determinism, so meetings batch into parallel rounds.
      ++pending_meetings;
      continue;
    }
    if (pending_meetings > 0) {
      sim.RunMeetingsParallel(pending_meetings);
      pending_meetings = 0;
    }
    pages[e.peer_a] = ApplyChurnEvent(e, c.num_nodes, std::move(pages[e.peer_a]));
    sim.ReplaceFragment(static_cast<p2p::PeerId>(e.peer_a), pages[e.peer_a]);
  }
  if (pending_meetings > 0) sim.RunMeetingsParallel(pending_meetings);
  return sim;
}

TEST(IncrementalPageRankProperty, ChurnScheduleBitIdenticalAcrossThreadCounts) {
  ForAll<ChurnCase>(
      0x16c47eed, 12, [](uint64_t seed) { return GenerateChurnCase(seed); },
      [](const ChurnCase& c) -> CheckResult {
        const GeneratedWorld world = BuildWorld(c);
        for (const bool incremental : {false, true}) {
          const JxpSimulation one = ReplayParallel(c, world, incremental, 1);
          const JxpSimulation four = ReplayParallel(c, world, incremental, 4);
          if (CheckResult failure = ComparePeersExactly(
                  one.peers(), four.peers(),
                  incremental ? "incremental on, 1 vs 4 threads"
                              : "incremental off, 1 vs 4 threads",
                  c.num_events)) {
            return failure;
          }
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace proptest
}  // namespace jxp
