// Randomized property tests of the JXP theorems under fault injection:
//   Safety      (Thm 5.3): scores never overestimate the true PageRank, no
//               matter which faults hit which meetings;
//   Monotone    (Thm 5.1): under message faults (drops, truncations, crashes,
//               retries) the world score still never rises — each applied
//               message is an honest JXP message, each suppressed side
//               simply keeps its state;
//   Convergence (Thm 5.4): a fault storm followed by a clean fair meeting
//               phase still converges to the true PageRank.
// Each property runs JXP_PROPTEST_CASES randomized cases (default 100);
// failures print a one-line JXP_PROPTEST_SEED repro.

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/simulation.h"
#include "core/state_io.h"
#include "generators.h"
#include "pagerank/pagerank.h"
#include "proptest.h"

namespace jxp {
namespace proptest {
namespace {

using core::JxpPeer;
using core::JxpSimulation;
using core::SimulationConfig;

constexpr double kSafetySlack = 1e-9;
constexpr double kMonotoneSlack = 1e-9;

SimulationConfig ConfigFor(const FaultCase& c) {
  SimulationConfig config;
  config.jxp.pr_tolerance = 1e-14;
  config.jxp.pr_max_iterations = 1000;
  config.jxp.merge_mode =
      c.full_merge ? core::MergeMode::kFullMerge : core::MergeMode::kLightWeight;
  config.jxp.combine_mode = core::CombineMode::kTakeMax;
  config.seed = c.seed;
  config.baseline_tolerance = 1e-14;
  config.baseline_max_iterations = 2000;
  config.faults = c.plan;
  if (c.plan.stale_resume_probability > 0) {
    config.fault_checkpoint_dir =
        ::testing::TempDir() + "jxp_faults_" + std::to_string(c.seed);
    config.checkpoint_every = 4;
  }
  return config;
}

/// pi_w per peer: 1 - sum of the true PageRank over the peer's pages.
std::vector<double> TrueWorldScores(const JxpSimulation& sim) {
  std::vector<double> true_world;
  true_world.reserve(sim.peers().size());
  for (const JxpPeer& peer : sim.peers()) {
    double local = 0;
    for (graph::PageId page : peer.fragment().Pages()) {
      local += sim.global_scores()[page];
    }
    true_world.push_back(1.0 - local);
  }
  return true_world;
}

/// Checks Thm 5.3 for every peer: alpha in (0, pi + slack], world score in
/// [pi_w - slack, 1).
CheckResult CheckSafety(const JxpSimulation& sim, const std::vector<double>& true_world,
                        size_t meeting) {
  for (const JxpPeer& peer : sim.peers()) {
    const size_t p = peer.id();
    if (peer.world_score() < true_world[p] - kSafetySlack || peer.world_score() >= 1.0) {
      std::ostringstream os;
      os << "world score " << peer.world_score() << " of peer " << p
         << " violates [pi_w=" << true_world[p] << ", 1) after meeting " << meeting;
      return os.str();
    }
    const graph::Subgraph& fragment = peer.fragment();
    for (graph::Subgraph::LocalIndex i = 0; i < fragment.NumLocalPages(); ++i) {
      const double alpha = peer.local_scores()[i];
      const double pi = sim.global_scores()[fragment.GlobalId(i)];
      if (!(alpha > 0) || alpha > pi + kSafetySlack) {
        std::ostringstream os;
        os << "page " << fragment.GlobalId(i) << " of peer " << p << " has alpha="
           << alpha << " vs pi=" << pi << " after meeting " << meeting;
        return os.str();
      }
    }
  }
  return std::nullopt;
}

TEST(FaultProperties, SafetyUnderMixedFaults) {
  PlanLimits limits;
  limits.max_drop = 0.3;
  limits.max_truncation = 0.3;
  limits.max_crash = 0.2;
  limits.max_stale_resume = 0.15;
  limits.max_unavailable = 0.3;
  ForAll<FaultCase>(
      0x5afe701, 100, [&](uint64_t seed) { return GenerateFaultCase(seed, limits); },
      [](const FaultCase& c) -> CheckResult {
        GeneratedWorld world = BuildWorld(c);
        JxpSimulation sim(world.graph, std::move(world.fragments), ConfigFor(c));
        const std::vector<double> true_world = TrueWorldScores(sim);
        for (size_t m = 0; m < c.num_meetings; ++m) {
          sim.RunMeetings(1);
          if (CheckResult failure = CheckSafety(sim, true_world, m)) return failure;
        }
        return std::nullopt;
      });
}

TEST(FaultProperties, WorldScoreMonotoneUnderMessageFaults) {
  // Stale resumes legitimately move a world score back up (the peer
  // re-enters an earlier point of its own monotone trajectory), so this
  // property draws every fault *except* them.
  PlanLimits limits;
  limits.max_drop = 0.4;
  limits.max_truncation = 0.4;
  limits.max_crash = 0.3;
  limits.max_unavailable = 0.4;
  ForAll<FaultCase>(
      0x30007001, 100, [&](uint64_t seed) { return GenerateFaultCase(seed, limits); },
      [](const FaultCase& c) -> CheckResult {
        FaultCase lw = c;
        lw.full_merge = false;  // Thm 5.1 covers the light-weight merge.
        GeneratedWorld world = BuildWorld(lw);
        JxpSimulation sim(world.graph, std::move(world.fragments), ConfigFor(lw));
        std::vector<double> prev;
        prev.reserve(sim.peers().size());
        for (const JxpPeer& peer : sim.peers()) prev.push_back(peer.world_score());
        for (size_t m = 0; m < lw.num_meetings; ++m) {
          sim.RunMeetings(1);
          for (const JxpPeer& peer : sim.peers()) {
            if (peer.world_score() > prev[peer.id()] + kMonotoneSlack) {
              std::ostringstream os;
              os << "world score of peer " << peer.id() << " rose " << prev[peer.id()]
                 << " -> " << peer.world_score() << " at meeting " << m;
              return os.str();
            }
            prev[peer.id()] = peer.world_score();
          }
        }
        return std::nullopt;
      });
}

TEST(FaultProperties, ConvergesAfterFaultStorm) {
  // Peer-level driver: a storm phase where every meeting runs under an
  // injected fault schedule, then a clean fair phase; Thm 5.4 still applies
  // because every reachable state is a safe JXP state.
  PlanLimits limits;
  limits.max_drop = 0.5;
  limits.max_truncation = 0.5;
  limits.max_crash = 0.4;
  limits.max_unavailable = 0.5;
  ForAll<FaultCase>(
      0xc0471013, 100, [&](uint64_t seed) { return GenerateFaultCase(seed, limits); },
      [](const FaultCase& c) -> CheckResult {
        GeneratedWorld world = BuildWorld(c);
        core::JxpOptions options;
        options.pr_tolerance = 1e-14;
        options.pr_max_iterations = 1000;
        options.merge_mode = c.full_merge ? core::MergeMode::kFullMerge
                                          : core::MergeMode::kLightWeight;

        pagerank::PageRankOptions pr_options;
        pr_options.damping = options.damping;
        pr_options.tolerance = 1e-14;
        pr_options.max_iterations = 2000;
        const pagerank::PageRankResult baseline =
            ComputePageRank(world.graph, pr_options);
        if (!baseline.converged) return "centralized baseline did not converge";

        std::vector<JxpPeer> peers;
        peers.reserve(c.num_peers);
        for (size_t p = 0; p < c.num_peers; ++p) {
          peers.emplace_back(static_cast<p2p::PeerId>(p),
                             graph::Subgraph::Induce(world.graph, world.fragments[p]),
                             world.graph.NumNodes(), options);
        }

        // Storm phase: random pairs, every meeting under a drawn schedule.
        Random rng(c.seed ^ 0x5701c4);
        p2p::FaultInjector injector(c.plan);
        for (size_t m = 0; m < c.num_meetings; ++m) {
          const size_t a = rng.NextBounded(c.num_peers);
          size_t b = rng.NextBounded(c.num_peers - 1);
          if (b >= a) ++b;
          const p2p::MeetingFaultDecision faults = injector.NextMeeting(
              static_cast<p2p::PeerId>(a), static_cast<p2p::PeerId>(b));
          if (faults.abandoned) continue;
          JxpPeer::Meet(peers[a], peers[b], faults);
        }

        // Clean phase: the theorem-test fair schedule.
        const size_t clean_meetings = 150 * c.num_peers;
        for (size_t m = 0; m < clean_meetings; ++m) {
          const size_t a = rng.NextBounded(c.num_peers);
          size_t b = rng.NextBounded(c.num_peers - 1);
          if (b >= a) ++b;
          JxpPeer::Meet(peers[a], peers[b]);
        }

        for (const JxpPeer& peer : peers) {
          const graph::Subgraph& fragment = peer.fragment();
          double local = 0;
          for (graph::Subgraph::LocalIndex i = 0; i < fragment.NumLocalPages(); ++i) {
            const double diff = std::abs(peer.local_scores()[i] -
                                         baseline.scores[fragment.GlobalId(i)]);
            if (diff > 1e-4) {
              std::ostringstream os;
              os << "peer " << peer.id() << " page " << fragment.GlobalId(i)
                 << " off by " << diff << " after recovery";
              return os.str();
            }
            local += baseline.scores[fragment.GlobalId(i)];
          }
          if (std::abs(peer.world_score() - (1.0 - local)) > 1e-3) {
            std::ostringstream os;
            os << "peer " << peer.id() << " world score " << peer.world_score()
               << " vs pi_w " << (1.0 - local) << " after recovery";
            return os.str();
          }
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace proptest
}  // namespace jxp
