// Tests of the property-test harness itself: seed plumbing, environment
// overrides, and the shrinking loop.

#include "proptest.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include "generators.h"

namespace jxp {
namespace proptest {
namespace {

/// Scoped environment-variable override (the harness reads the environment
/// on every call, so setenv/unsetenv around a call is race-free in a
/// single-threaded test binary).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(ProptestHarness, CaseSeedIsIdentityAtIndexZero) {
  EXPECT_EQ(CaseSeed(12345, 0), 12345u);
  EXPECT_EQ(CaseSeed(0, 0), 0u);
}

TEST(ProptestHarness, CaseSeedsAreDistinct) {
  std::vector<uint64_t> seeds;
  for (size_t i = 0; i < 100; ++i) seeds.push_back(CaseSeed(42, i));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(ProptestHarness, EnvironmentOverridesSeedAndCases) {
  {
    ScopedEnv seed("JXP_PROPTEST_SEED", "777");
    ScopedEnv cases("JXP_PROPTEST_CASES", "3");
    EXPECT_EQ(MasterSeed(1), 777u);
    EXPECT_EQ(NumCases(100), 3u);
  }
  {
    ScopedEnv seed("JXP_PROPTEST_SEED", "not-a-number");
    ScopedEnv cases("JXP_PROPTEST_CASES", "0");
    EXPECT_EQ(MasterSeed(1), 1u);   // Unparseable: default.
    EXPECT_EQ(NumCases(100), 100u);  // Zero cases: default.
  }
}

/// A toy case for exercising ForAll's shrink loop without the JXP stack.
struct ToyCase {
  uint64_t seed = 0;
  size_t size = 0;

  std::string Describe() const { return "size=" + std::to_string(size); }
  std::vector<ToyCase> Shrink() const {
    if (size == 0) return {};
    return {ToyCase{seed, size / 2}, ToyCase{seed, size - 1}};
  }
};

TEST(ProptestHarness, PassingPropertyReportsNothing) {
  ForAll<ToyCase>(
      9, 50, [](uint64_t seed) { return ToyCase{seed, seed % 100}; },
      [](const ToyCase&) { return CheckResult(); });
}

TEST(ProptestHarness, FailingPropertyShrinksToMinimalCase) {
  // Property "size < 10" fails for many generated cases; the minimal
  // counterexample reachable by halving/decrementing is size == 10.
  size_t checks = 0;
  ToyCase smallest_seen{0, static_cast<size_t>(-1)};
  EXPECT_NONFATAL_FAILURE(
      {
        ForAll<ToyCase>(
            9, 50, [](uint64_t seed) { return ToyCase{seed, 10 + seed % 90}; },
            [&](const ToyCase& c) -> CheckResult {
              ++checks;
              if (c.size < 10) return std::nullopt;
              if (c.size < smallest_seen.size) smallest_seen = c;
              return "size too large: " + std::to_string(c.size);
            });
      },
      "repro: JXP_PROPTEST_SEED=");
  EXPECT_EQ(smallest_seen.size, 10u) << "shrinking did not reach the boundary";
  EXPECT_GT(checks, 1u);
}

TEST(ProptestHarness, GeneratorIsDeterministic) {
  PlanLimits limits;
  limits.max_drop = 0.3;
  limits.max_crash = 0.2;
  limits.max_unavailable = 0.4;
  const FaultCase a = GenerateFaultCase(1234, limits);
  const FaultCase b = GenerateFaultCase(1234, limits);
  EXPECT_EQ(a.Describe(), b.Describe());
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.plan.message_drop_probability, b.plan.message_drop_probability);
  EXPECT_EQ(a.plan.seed, b.plan.seed);

  const GeneratedWorld wa = BuildWorld(a);
  const GeneratedWorld wb = BuildWorld(b);
  ASSERT_EQ(wa.fragments.size(), wb.fragments.size());
  for (size_t p = 0; p < wa.fragments.size(); ++p) {
    EXPECT_EQ(wa.fragments[p], wb.fragments[p]);
  }
  EXPECT_EQ(wa.graph.NumNodes(), a.num_nodes);
}

TEST(ProptestHarness, GeneratorRespectsLimits) {
  PlanLimits limits;  // All-zero: every fault disabled.
  for (uint64_t s = 0; s < 50; ++s) {
    const FaultCase c = GenerateFaultCase(CaseSeed(7, s), limits);
    EXPECT_FALSE(c.plan.Enabled()) << c.Describe();
    EXPECT_GE(c.num_nodes, 16u);
    EXPECT_LE(c.num_nodes, 56u);
    EXPECT_GE(c.num_peers, 2u);
    EXPECT_LE(c.num_peers, 5u);
    EXPECT_GT(c.plan.truncation_keep_fraction, 0.0);
    EXPECT_LE(c.plan.truncation_keep_fraction, 1.0);
  }
}

TEST(ProptestHarness, ShrinkCandidatesAreSmallerOrFaultFree) {
  PlanLimits limits;
  limits.max_drop = 0.5;
  limits.max_truncation = 0.5;
  limits.max_crash = 0.3;
  limits.max_stale_resume = 0.3;
  limits.max_unavailable = 0.5;
  const FaultCase c = GenerateFaultCase(99, limits);
  for (const FaultCase& s : c.Shrink()) {
    EXPECT_EQ(s.seed, c.seed);
    const bool smaller = s.num_nodes < c.num_nodes || s.num_peers < c.num_peers ||
                         s.num_meetings < c.num_meetings ||
                         (c.full_merge && !s.full_merge);
    const bool fault_removed =
        (c.plan.message_drop_probability > 0 && s.plan.message_drop_probability == 0) ||
        (c.plan.truncation_probability > 0 && s.plan.truncation_probability == 0) ||
        (c.plan.crash_probability > 0 && s.plan.crash_probability == 0) ||
        (c.plan.stale_resume_probability > 0 && s.plan.stale_resume_probability == 0) ||
        (c.plan.unavailable_probability > 0 && s.plan.unavailable_probability == 0);
    EXPECT_TRUE(smaller || fault_removed) << s.Describe();
  }
}

}  // namespace
}  // namespace proptest
}  // namespace jxp
