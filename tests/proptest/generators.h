#ifndef JXP_TESTS_PROPTEST_GENERATORS_H_
#define JXP_TESTS_PROPTEST_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "p2p/faults.h"

namespace jxp {
namespace proptest {

/// Upper bounds for the per-case fault-probability draws; a scenario zeroes
/// the bounds of the faults it must exclude (e.g. the monotone-world-score
/// property excludes stale resumes, which legitimately move a world score
/// back up).
struct PlanLimits {
  double max_drop = 0;
  double max_truncation = 0;
  double max_crash = 0;
  double max_stale_resume = 0;
  double max_unavailable = 0;
};

/// One randomized test case: the world's size parameters plus a fault plan.
/// Everything heavy (graph, fragments, schedules) is derived from `seed` as
/// a pure function, so a case is reproducible from its parameters alone.
struct FaultCase {
  uint64_t seed = 0;
  size_t num_nodes = 40;
  size_t num_peers = 3;
  size_t num_meetings = 80;
  bool full_merge = false;
  p2p::FaultPlan plan;

  std::string Describe() const;

  /// Shrink candidates: halved sizes and individually-disabled faults, each
  /// keeping the same seed so the candidate stays fully reproducible.
  std::vector<FaultCase> Shrink() const;
};

/// Draws a random case under `limits`: 16-56 nodes, 2-5 peers, 30-120
/// meetings, and each fault probability uniform in [0, limit].
FaultCase GenerateFaultCase(uint64_t seed, const PlanLimits& limits);

/// The case's world: a Barabási-Albert graph and overlapping random
/// fragments that jointly cover it (every page is assigned to at least one
/// peer; none is empty).
struct GeneratedWorld {
  graph::Graph graph;
  std::vector<std::vector<graph::PageId>> fragments;
};

GeneratedWorld BuildWorld(const FaultCase& c);

/// One event of a churn schedule: a meeting between two peers, or a
/// fragment change (peer re-crawl) of one peer.
struct ChurnEvent {
  enum class Kind : uint8_t {
    kMeeting,
    /// The peer crawls one page it did not hold.
    kFragmentAdd,
    /// The peer drops one of its pages (never the last one).
    kFragmentRemove,
    /// The peer swaps one page: drop one, crawl another.
    kFragmentEdit,
  };
  Kind kind = Kind::kMeeting;
  /// Meeting participants (kMeeting, peer_a != peer_b), or the churned peer
  /// (fragment events; peer_b unused).
  size_t peer_a = 0;
  size_t peer_b = 0;
  /// Per-event randomness of the fragment mutation / meeting processing.
  uint64_t seed = 0;
};

/// A randomized churn schedule: meetings interleaved with fragment
/// add/remove/edit events over a fixed global graph (churn re-partitions the
/// graph, so centralized PageRank — the oracle — is unchanged by it).
/// Everything heavy is a pure function of the parameters below; see
/// FaultCase for the reproducibility contract. The fault plan defaults to
/// clean and exists so the fault suite can combine churn with message
/// faults.
struct ChurnCase {
  uint64_t seed = 0;
  size_t num_nodes = 40;
  size_t num_peers = 3;
  size_t num_events = 60;
  /// Probability that an event is a fragment change instead of a meeting.
  double churn_probability = 0.2;
  bool full_merge = false;
  p2p::FaultPlan plan;

  std::string Describe() const;

  /// Shrink candidates: halved sizes, churn disabled, light-weight merge,
  /// individually-disabled faults — each keeping the same seed.
  std::vector<ChurnCase> Shrink() const;
};

/// Draws a random churn case under `limits` (faults off with the default
/// limits): 16-56 nodes, 2-5 peers, 24-96 events, churn probability in
/// [0.1, 0.4].
ChurnCase GenerateChurnCase(uint64_t seed, const PlanLimits& limits = PlanLimits());

/// The case's world; same construction as the FaultCase overload.
GeneratedWorld BuildWorld(const ChurnCase& c);

/// The case's event sequence (length num_events), derived purely from the
/// case parameters. Fragment events rotate add/remove/edit and pick a
/// random peer; meetings pick a random ordered peer pair.
std::vector<ChurnEvent> BuildChurnSchedule(const ChurnCase& c);

/// Applies a fragment event to `pages` (the peer's current page set) over a
/// global graph of `num_nodes` pages, returning the new set. Deterministic
/// in the event's seed; degenerates to a no-op when the requested mutation
/// is impossible (nothing left to add / remove). The result is never empty.
std::vector<graph::PageId> ApplyChurnEvent(const ChurnEvent& e, size_t num_nodes,
                                           std::vector<graph::PageId> pages);

}  // namespace proptest
}  // namespace jxp

#endif  // JXP_TESTS_PROPTEST_GENERATORS_H_
