#ifndef JXP_TESTS_PROPTEST_GENERATORS_H_
#define JXP_TESTS_PROPTEST_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "p2p/faults.h"

namespace jxp {
namespace proptest {

/// Upper bounds for the per-case fault-probability draws; a scenario zeroes
/// the bounds of the faults it must exclude (e.g. the monotone-world-score
/// property excludes stale resumes, which legitimately move a world score
/// back up).
struct PlanLimits {
  double max_drop = 0;
  double max_truncation = 0;
  double max_crash = 0;
  double max_stale_resume = 0;
  double max_unavailable = 0;
};

/// One randomized test case: the world's size parameters plus a fault plan.
/// Everything heavy (graph, fragments, schedules) is derived from `seed` as
/// a pure function, so a case is reproducible from its parameters alone.
struct FaultCase {
  uint64_t seed = 0;
  size_t num_nodes = 40;
  size_t num_peers = 3;
  size_t num_meetings = 80;
  bool full_merge = false;
  p2p::FaultPlan plan;

  std::string Describe() const;

  /// Shrink candidates: halved sizes and individually-disabled faults, each
  /// keeping the same seed so the candidate stays fully reproducible.
  std::vector<FaultCase> Shrink() const;
};

/// Draws a random case under `limits`: 16-56 nodes, 2-5 peers, 30-120
/// meetings, and each fault probability uniform in [0, limit].
FaultCase GenerateFaultCase(uint64_t seed, const PlanLimits& limits);

/// The case's world: a Barabási-Albert graph and overlapping random
/// fragments that jointly cover it (every page is assigned to at least one
/// peer; none is empty).
struct GeneratedWorld {
  graph::Graph graph;
  std::vector<std::vector<graph::PageId>> fragments;
};

GeneratedWorld BuildWorld(const FaultCase& c);

}  // namespace proptest
}  // namespace jxp

#endif  // JXP_TESTS_PROPTEST_GENERATORS_H_
