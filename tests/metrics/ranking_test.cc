#include "metrics/ranking.h"

#include <cmath>

#include <gtest/gtest.h>

namespace jxp {
namespace metrics {
namespace {

TEST(TopKTest, DenseVector) {
  const std::vector<double> scores = {0.1, 0.5, 0.3, 0.5};
  const auto top = TopK(std::span<const double>(scores), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 1u);  // Tie broken by smaller id.
  EXPECT_EQ(top[1].first, 3u);
  EXPECT_EQ(top[2].first, 2u);
}

TEST(TopKTest, KLargerThanInput) {
  const std::vector<double> scores = {0.2, 0.1};
  EXPECT_EQ(TopK(std::span<const double>(scores), 10).size(), 2u);
}

TEST(TopKTest, SparseMap) {
  const std::unordered_map<uint32_t, double> scores = {{7, 0.9}, {3, 0.1}, {5, 0.5}};
  const auto top = TopK(scores, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 7u);
  EXPECT_EQ(top[1].first, 5u);
}

std::vector<ScoredItem> MakeRanking(std::initializer_list<uint32_t> ids) {
  std::vector<ScoredItem> r;
  double score = 1.0;
  for (uint32_t id : ids) r.emplace_back(id, score -= 0.01);
  return r;
}

TEST(FootruleTest, IdenticalRankingsAreZero) {
  const auto r = MakeRanking({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(SpearmanFootrule(r, r), 0.0);
}

TEST(FootruleTest, DisjointRankingsAreOne) {
  const auto r1 = MakeRanking({1, 2, 3});
  const auto r2 = MakeRanking({4, 5, 6});
  EXPECT_DOUBLE_EQ(SpearmanFootrule(r1, r2), 1.0);
}

TEST(FootruleTest, SwapOfNeighborsIsSmall) {
  const auto r1 = MakeRanking({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  const auto r2 = MakeRanking({2, 1, 3, 4, 5, 6, 7, 8, 9, 10});
  // Sum |pos diff| = 2, normalizer = 10*11 = 110.
  EXPECT_NEAR(SpearmanFootrule(r1, r2), 2.0 / 110, 1e-12);
}

TEST(FootruleTest, MissingPageTakesPositionKPlusOne) {
  const auto r1 = MakeRanking({1, 2});
  const auto r2 = MakeRanking({1, 3});
  // Page 2: |2 - 3| = 1; page 3: |3 - 2| = 1; total 2 over k(k+1) = 6.
  EXPECT_NEAR(SpearmanFootrule(r1, r2), 2.0 / 6, 1e-12);
}

TEST(FootruleTest, SymmetricInArguments) {
  const auto r1 = MakeRanking({1, 2, 3, 9});
  const auto r2 = MakeRanking({3, 1, 7, 2});
  EXPECT_DOUBLE_EQ(SpearmanFootrule(r1, r2), SpearmanFootrule(r2, r1));
}

TEST(FootruleTest, EmptyRankings) {
  const std::vector<ScoredItem> empty;
  EXPECT_DOUBLE_EQ(SpearmanFootrule(empty, empty), 0.0);
}

TEST(KendallTest, IdenticalIsZeroReversedIsOne) {
  const auto r1 = MakeRanking({1, 2, 3, 4});
  const auto r2 = MakeRanking({4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(KendallTauDistance(r1, r1), 0.0);
  EXPECT_DOUBLE_EQ(KendallTauDistance(r1, r2), 1.0);
}

TEST(KendallTest, PartialDisagreement) {
  const auto r1 = MakeRanking({1, 2, 3});
  const auto r2 = MakeRanking({1, 3, 2});
  // One discordant pair of three.
  EXPECT_NEAR(KendallTauDistance(r1, r2), 1.0 / 3, 1e-12);
}

TEST(PrecisionTest, Basics) {
  const std::vector<uint32_t> retrieved = {1, 2, 3, 4, 5};
  const std::unordered_set<uint32_t> relevant = {2, 4, 9};
  EXPECT_DOUBLE_EQ(PrecisionAtK(retrieved, relevant, 5), 0.4);
  EXPECT_DOUBLE_EQ(PrecisionAtK(retrieved, relevant, 2), 0.5);
}

TEST(PrecisionTest, FewerRetrievedThanK) {
  const std::vector<uint32_t> retrieved = {2};
  const std::unordered_set<uint32_t> relevant = {2};
  EXPECT_DOUBLE_EQ(PrecisionAtK(retrieved, relevant, 10), 1.0);
}

TEST(PrecisionTest, EmptyRetrievedIsZero) {
  const std::vector<uint32_t> retrieved;
  EXPECT_DOUBLE_EQ(PrecisionAtK(retrieved, {1}, 10), 0.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  const std::vector<uint32_t> retrieved = {1, 2, 3};
  EXPECT_DOUBLE_EQ(NdcgAtK(retrieved, {1, 2, 3}, 3), 1.0);
}

TEST(NdcgTest, EarlyHitsScoreHigher) {
  const std::vector<uint32_t> early = {1, 9, 8};
  const std::vector<uint32_t> late = {9, 8, 1};
  const std::unordered_set<uint32_t> relevant = {1};
  EXPECT_GT(NdcgAtK(early, relevant, 3), NdcgAtK(late, relevant, 3));
}

TEST(NdcgTest, KnownValue) {
  // Relevant at positions 1 and 3 of 3; two relevant items exist.
  const std::vector<uint32_t> retrieved = {1, 9, 2};
  const std::unordered_set<uint32_t> relevant = {1, 2};
  const double dcg = 1.0 / std::log2(2.0) + 1.0 / std::log2(4.0);
  const double ideal = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(retrieved, relevant, 3), dcg / ideal, 1e-12);
}

TEST(NdcgTest, NoRelevantIsZero) {
  const std::vector<uint32_t> retrieved = {1, 2};
  EXPECT_DOUBLE_EQ(NdcgAtK(retrieved, {}, 5), 0.0);
}

TEST(ReciprocalRankTest, Basics) {
  const std::vector<uint32_t> retrieved = {9, 8, 3, 7};
  EXPECT_DOUBLE_EQ(ReciprocalRank(retrieved, {3}, 10), 1.0 / 3);
  EXPECT_DOUBLE_EQ(ReciprocalRank(retrieved, {9}, 10), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(retrieved, {42}, 10), 0.0);
  // Outside the top-k window: not counted.
  EXPECT_DOUBLE_EQ(ReciprocalRank(retrieved, {7}, 3), 0.0);
}

}  // namespace
}  // namespace metrics
}  // namespace jxp
