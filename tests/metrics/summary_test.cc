#include "metrics/summary.h"

#include <gtest/gtest.h>

#include "metrics/error.h"

namespace jxp {
namespace metrics {
namespace {

TEST(SummaryTest, EmptyIsZeros) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0.0);
}

TEST(SummaryTest, SingleValue) {
  const std::vector<double> v = {7.0};
  const Summary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 7);
  EXPECT_DOUBLE_EQ(s.q1, 7);
  EXPECT_DOUBLE_EQ(s.median, 7);
  EXPECT_DOUBLE_EQ(s.q3, 7);
  EXPECT_DOUBLE_EQ(s.max, 7);
}

TEST(SummaryTest, KnownQuartiles) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  const Summary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_EQ(s.count, 5u);
}

TEST(SummaryTest, UnsortedInput) {
  const std::vector<double> v = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(Summarize(v).median, 3);
}

TEST(SummaryTest, InterpolatedMedian) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Summarize(v).median, 2.5);
}

TEST(StdDevTest, KnownValue) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(StdDev(v), 2.138, 0.001);
}

TEST(StdDevTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(StdDev(one), 0.0);
}

TEST(LinearScoreErrorTest, ExactMatchIsZero) {
  const std::vector<ScoredItem> top = {{0, 0.5}, {1, 0.3}};
  const std::unordered_map<uint32_t, double> approx = {{0, 0.5}, {1, 0.3}};
  EXPECT_DOUBLE_EQ(LinearScoreError(top, approx), 0.0);
}

TEST(LinearScoreErrorTest, MissingPagesScoreZero) {
  const std::vector<ScoredItem> top = {{0, 0.5}, {1, 0.3}};
  const std::unordered_map<uint32_t, double> approx = {{0, 0.5}};
  EXPECT_DOUBLE_EQ(LinearScoreError(top, approx), 0.15);
  EXPECT_DOUBLE_EQ(MaxScoreError(top, approx), 0.3);
}

TEST(LinearScoreErrorTest, AveragesOverTopK) {
  const std::vector<ScoredItem> top = {{0, 0.6}, {1, 0.4}};
  const std::unordered_map<uint32_t, double> approx = {{0, 0.5}, {1, 0.3}};
  EXPECT_NEAR(LinearScoreError(top, approx), 0.1, 1e-12);
}

}  // namespace
}  // namespace metrics
}  // namespace jxp
