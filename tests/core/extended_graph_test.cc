#include "core/extended_graph.h"

#include <gtest/gtest.h>

#include "markov/dense_solver.h"
#include "markov/power_iteration.h"

namespace jxp {
namespace core {
namespace {

/// Global graph: 0 -> 1, 1 -> {0, 2}, 2 -> 0 over N = 4 (page 3 unused).
graph::Graph TestGraph() {
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  return builder.Build();
}

TEST(ExtendedGraphTest, LocalRowsFollowEq6And7) {
  const graph::Graph g = TestGraph();
  const graph::Subgraph fragment = graph::Subgraph::Induce(g, {0, 1});
  WorldNode world;
  const ExtendedGraphSystem system = BuildExtendedSystem(fragment, world, 0.5, 4);
  ASSERT_EQ(system.matrix.NumStates(), 3u);
  // Row 0 (page 0): single link to local page 1.
  ASSERT_EQ(system.matrix.Row(0).size(), 1u);
  EXPECT_EQ(system.matrix.Row(0)[0].column, 1u);
  EXPECT_DOUBLE_EQ(system.matrix.Row(0)[0].weight, 1.0);
  // Row 1 (page 1): 1/2 to local page 0, 1/2 to the world (page 2 external).
  EXPECT_DOUBLE_EQ(system.matrix.RowSum(1), 1.0);
  double to_world = 0;
  for (const auto& e : system.matrix.Row(1)) {
    if (e.column == 2) to_world = e.weight;
  }
  EXPECT_DOUBLE_EQ(to_world, 0.5);
}

TEST(ExtendedGraphTest, WorldRowFollowsEq8And9) {
  const graph::Graph g = TestGraph();
  const graph::Subgraph fragment = graph::Subgraph::Induce(g, {0, 1});
  WorldNode world;
  // External page 2 (out-degree 1) points at local page 0 with score 0.2.
  const std::vector<graph::PageId> targets = {0};
  world.Observe(2, 1, 0.2, targets, CombineMode::kTakeMax);
  const double world_score = 0.5;
  const ExtendedGraphSystem system = BuildExtendedSystem(fragment, world, world_score, 4);
  // p_w0 = (1/out(2)) * alpha(2)/alpha_w = 0.2/0.5 = 0.4; self-loop 0.6.
  const auto row = system.matrix.Row(2);
  double to_0 = 0;
  double self = 0;
  for (const auto& e : row) {
    if (e.column == 0) to_0 = e.weight;
    if (e.column == 2) self = e.weight;
  }
  EXPECT_DOUBLE_EQ(to_0, 0.4);
  EXPECT_DOUBLE_EQ(self, 0.6);
  EXPECT_FALSE(system.world_row_clamped);
}

TEST(ExtendedGraphTest, TeleportFollowsEq10) {
  const graph::Graph g = TestGraph();
  const graph::Subgraph fragment = graph::Subgraph::Induce(g, {0, 1});
  WorldNode world;
  const ExtendedGraphSystem system = BuildExtendedSystem(fragment, world, 0.5, 4);
  EXPECT_DOUBLE_EQ(system.teleport[0], 0.25);
  EXPECT_DOUBLE_EQ(system.teleport[1], 0.25);
  EXPECT_DOUBLE_EQ(system.teleport[2], 0.5);  // (N - n)/N = 2/4.
  EXPECT_EQ(system.dangling, system.teleport);
}

TEST(ExtendedGraphTest, ClampsSuperStochasticWorldRow) {
  const graph::Graph g = TestGraph();
  const graph::Subgraph fragment = graph::Subgraph::Induce(g, {0, 1});
  WorldNode world;
  const std::vector<graph::PageId> targets = {0};
  world.Observe(2, 1, 0.9, targets, CombineMode::kTakeMax);
  // World score far below the entry's score: flow would exceed 1.
  const ExtendedGraphSystem system = BuildExtendedSystem(fragment, world, 0.1, 4);
  EXPECT_TRUE(system.world_row_clamped);
  EXPECT_LE(system.matrix.RowSum(2), 1.0 + 1e-12);
}

TEST(ExtendedGraphTest, DanglingKnowledgeFlowsUniformly) {
  const graph::Graph g = TestGraph();
  const graph::Subgraph fragment = graph::Subgraph::Induce(g, {0, 1});
  WorldNode world;
  world.ObserveDangling(3, 0.1, CombineMode::kTakeMax);
  const ExtendedGraphSystem system = BuildExtendedSystem(fragment, world, 0.5, 4);
  // Each local page receives (0.1/0.5)/4 = 0.05 from the world row.
  const auto row = system.matrix.Row(2);
  double to_0 = 0;
  double to_1 = 0;
  for (const auto& e : row) {
    if (e.column == 0) to_0 = e.weight;
    if (e.column == 1) to_1 = e.weight;
  }
  EXPECT_DOUBLE_EQ(to_0, 0.05);
  EXPECT_DOUBLE_EQ(to_1, 0.05);
}

TEST(ExtendedGraphTest, AggregationExactness) {
  // With *perfect* world knowledge, the extended chain's stationary
  // distribution matches the global PR projected onto (local pages, world):
  // the state-aggregation exactness that motivates the world node design.
  const graph::Graph g = TestGraph();
  // Global PR over the 4-page graph (page 3 dangling).
  markov::SparseMatrixBuilder global_builder(4);
  for (graph::PageId u = 0; u < 4; ++u) {
    const auto succ = g.OutNeighbors(u);
    for (graph::PageId v : succ) {
      global_builder.Add(u, v, 1.0 / static_cast<double>(succ.size()));
    }
  }
  markov::PowerIterationOptions options;
  options.damping = 0.85;
  options.tolerance = 1e-15;
  options.max_iterations = 2000;
  const auto global = StationaryDistribution(global_builder.Build(), options);
  ASSERT_TRUE(global.converged);
  const std::vector<double>& pi = global.distribution;

  const graph::Subgraph fragment = graph::Subgraph::Induce(g, {0, 1});
  WorldNode world;
  // Perfect knowledge: page 2 -> 0 with its true score; page 3 dangling
  // with its true score.
  const std::vector<graph::PageId> targets = {0};
  world.Observe(2, 1, pi[2], targets, CombineMode::kTakeMax);
  world.ObserveDangling(3, pi[3], CombineMode::kTakeMax);
  const double true_world = pi[2] + pi[3];
  const ExtendedGraphSystem system =
      BuildExtendedSystem(fragment, world, true_world, 4);
  const auto local = StationaryDistribution(system.matrix, system.teleport,
                                            system.dangling, {}, options);
  ASSERT_TRUE(local.converged);
  EXPECT_NEAR(local.distribution[0], pi[0], 1e-10);
  EXPECT_NEAR(local.distribution[1], pi[1], 1e-10);
  EXPECT_NEAR(local.distribution[2], true_world, 1e-10);
}

}  // namespace
}  // namespace core
}  // namespace jxp
