#include "core/world_node.h"

#include <gtest/gtest.h>

namespace jxp {
namespace core {
namespace {

constexpr auto kMax = CombineMode::kTakeMax;
constexpr auto kAvg = CombineMode::kAverage;

TEST(WorldNodeTest, FirstObservationStoresEverything) {
  WorldNode w;
  const std::vector<graph::PageId> targets = {5, 3, 5};  // Dup collapses.
  w.Observe(10, 4, 0.2, targets, kMax);
  ASSERT_EQ(w.NumEntries(), 1u);
  const ExternalPageInfo* info = w.Find(10);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->out_degree, 4u);
  EXPECT_DOUBLE_EQ(info->score, 0.2);
  EXPECT_EQ(info->targets, (std::vector<graph::PageId>{3, 5}));
  EXPECT_EQ(w.NumLinks(), 2u);
}

TEST(WorldNodeTest, TakeMaxKeepsLargerScore) {
  WorldNode w;
  const std::vector<graph::PageId> t = {1};
  w.Observe(10, 2, 0.3, t, kMax);
  w.Observe(10, 2, 0.1, t, kMax);
  EXPECT_DOUBLE_EQ(w.Find(10)->score, 0.3);
  w.Observe(10, 2, 0.5, t, kMax);
  EXPECT_DOUBLE_EQ(w.Find(10)->score, 0.5);
}

TEST(WorldNodeTest, AverageCombines) {
  WorldNode w;
  const std::vector<graph::PageId> t = {1};
  w.Observe(10, 2, 0.4, t, kAvg);
  w.Observe(10, 2, 0.2, t, kAvg);
  EXPECT_DOUBLE_EQ(w.Find(10)->score, 0.3);
}

TEST(WorldNodeTest, AuthoritativeOverwrites) {
  WorldNode w;
  const std::vector<graph::PageId> t = {1};
  w.Observe(10, 2, 0.5, t, kMax);
  w.Observe(10, 2, 0.1, t, kMax, /*authoritative=*/true);
  EXPECT_DOUBLE_EQ(w.Find(10)->score, 0.1);
}

TEST(WorldNodeTest, TargetListsUnion) {
  WorldNode w;
  const std::vector<graph::PageId> t1 = {1, 3};
  const std::vector<graph::PageId> t2 = {2, 3};
  w.Observe(10, 5, 0.1, t1, kMax);
  w.Observe(10, 5, 0.1, t2, kMax);
  EXPECT_EQ(w.Find(10)->targets, (std::vector<graph::PageId>{1, 2, 3}));
}

TEST(WorldNodeTest, DanglingScores) {
  WorldNode w;
  w.ObserveDangling(7, 0.1, kMax);
  w.ObserveDangling(8, 0.2, kMax);
  w.ObserveDangling(7, 0.05, kMax);  // Smaller: ignored.
  EXPECT_DOUBLE_EQ(w.TotalDanglingScore(), 0.3);
  w.ObserveDangling(7, 0.05, kMax, /*authoritative=*/true);
  EXPECT_DOUBLE_EQ(w.TotalDanglingScore(), 0.25);
}

TEST(WorldNodeTest, EraseRemovesBothKinds) {
  WorldNode w;
  const std::vector<graph::PageId> t = {1};
  w.Observe(10, 2, 0.3, t, kMax);
  w.ObserveDangling(11, 0.2, kMax);
  w.Erase(10);
  w.Erase(11);
  EXPECT_EQ(w.NumEntries(), 0u);
  EXPECT_DOUBLE_EQ(w.TotalDanglingScore(), 0.0);
}

TEST(WorldNodeTest, FilterTargetsDropsEmptyEntries) {
  WorldNode w;
  const std::vector<graph::PageId> t1 = {1, 2};
  const std::vector<graph::PageId> t2 = {3};
  w.Observe(10, 4, 0.1, t1, kMax);
  w.Observe(11, 4, 0.1, t2, kMax);
  w.FilterTargets([](graph::PageId t) { return t <= 2; });
  EXPECT_NE(w.Find(10), nullptr);
  EXPECT_EQ(w.Find(11), nullptr);
  EXPECT_EQ(w.Find(10)->targets, (std::vector<graph::PageId>{1, 2}));
}

TEST(WorldNodeTest, ScaleScores) {
  WorldNode w;
  const std::vector<graph::PageId> t = {1};
  w.Observe(10, 2, 0.4, t, kMax);
  w.ObserveDangling(11, 0.2, kMax);
  w.ScaleScores(0.5);
  EXPECT_DOUBLE_EQ(w.Find(10)->score, 0.2);
  EXPECT_DOUBLE_EQ(w.TotalDanglingScore(), 0.1);
}

TEST(WorldNodeTest, WireBytes) {
  WorldNode w;
  const std::vector<graph::PageId> t = {1, 2, 3};
  w.Observe(10, 4, 0.1, t, kMax);
  w.ObserveDangling(11, 0.2, kMax);
  EXPECT_DOUBLE_EQ(w.WireBytes(), 20 + 3 * 8 + 16);
}

}  // namespace
}  // namespace core
}  // namespace jxp
