#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/extended_graph.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "markov/power_iteration.h"

namespace jxp {
namespace core {
namespace {

/// Asserts two extended systems are identical bit for bit — the cache's
/// contract is exact agreement with a fresh BuildExtendedSystem, not mere
/// numerical closeness.
void ExpectSystemsIdentical(const ExtendedGraphSystem& a, const ExtendedGraphSystem& b) {
  ASSERT_EQ(a.matrix.NumStates(), b.matrix.NumStates());
  for (size_t i = 0; i < a.matrix.NumStates(); ++i) {
    const auto row_a = a.matrix.Row(i);
    const auto row_b = b.matrix.Row(i);
    ASSERT_EQ(row_a.size(), row_b.size()) << "row " << i;
    for (size_t k = 0; k < row_a.size(); ++k) {
      EXPECT_EQ(row_a[k].column, row_b[k].column) << "row " << i << " entry " << k;
      EXPECT_EQ(row_a[k].weight, row_b[k].weight) << "row " << i << " entry " << k;
    }
    EXPECT_EQ(a.matrix.RowSum(i), b.matrix.RowSum(i)) << "row " << i;
  }
  EXPECT_EQ(a.teleport, b.teleport);
  EXPECT_EQ(a.dangling, b.dangling);
  EXPECT_EQ(a.world_row_clamped, b.world_row_clamped);
}

/// Deterministic per-page out-degree for Observe calls (WorldNode rejects
/// conflicting out-degree reports for one page).
uint32_t OutDegreeOf(graph::PageId page) { return 5 + page % 7; }

/// A random global graph, a random fragment of it, and a world node with
/// randomized external in-link knowledge (some pages dangling).
struct RandomCase {
  explicit RandomCase(uint64_t seed) : rng(seed) {
    const size_t n = 120 + rng.NextBounded(80);
    graph::GraphBuilder builder(n);
    for (graph::PageId u = 0; u < n; ++u) {
      const size_t degree = rng.NextBounded(7);
      for (size_t k = 0; k < degree; ++k) {
        builder.AddEdge(u, static_cast<graph::PageId>(rng.NextBounded(n)));
      }
    }
    global = builder.Build();
    global_size = n;

    const size_t local = 20 + rng.NextBounded(30);
    std::vector<graph::PageId> pages;
    for (size_t idx : rng.SampleWithoutReplacement(n, local)) {
      pages.push_back(static_cast<graph::PageId>(idx));
    }
    fragment = graph::Subgraph::Induce(global, std::move(pages));

    // Random external in-link knowledge: external pages pointing at random
    // local targets, plus a few dangling entries.
    const size_t num_entries = 5 + rng.NextBounded(15);
    for (size_t e = 0; e < num_entries; ++e) {
      const graph::PageId page = static_cast<graph::PageId>(rng.NextBounded(n));
      if (fragment.LocalIndexOf(page) != graph::Subgraph::kNotLocal) continue;
      const size_t num_targets = 1 + rng.NextBounded(4);
      std::vector<graph::PageId> targets;
      for (size_t idx :
           rng.SampleWithoutReplacement(fragment.NumLocalPages(), num_targets)) {
        targets.push_back(fragment.GlobalId(static_cast<uint32_t>(idx)));
      }
      // Out-degree is a function of the page id: repeated observations of
      // one page must agree on it (WorldNode checks consistency).
      world.Observe(page, OutDegreeOf(page), rng.NextDouble() * 0.02, targets,
                    CombineMode::kTakeMax);
    }
    for (size_t d = 0; d < 3; ++d) {
      const graph::PageId page = static_cast<graph::PageId>(rng.NextBounded(n));
      if (fragment.LocalIndexOf(page) != graph::Subgraph::kNotLocal) continue;
      world.ObserveDangling(page, rng.NextDouble() * 0.01, CombineMode::kTakeMax);
    }
  }

  /// A page guaranteed external to the fragment (and thus Observable).
  graph::PageId ExternalPage() const {
    graph::PageId page = static_cast<graph::PageId>(global_size - 1);
    while (fragment.LocalIndexOf(page) != graph::Subgraph::kNotLocal) --page;
    return page;
  }

  Random rng;
  graph::Graph global;
  size_t global_size = 0;
  graph::Subgraph fragment;
  WorldNode world;
};

TEST(ExtendedSystemCacheTest, PrepareMatchesFreshBuild) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomCase c(seed);
    for (const auto weighting :
         {WorldLinkWeighting::kScoreProportional, WorldLinkWeighting::kUniform}) {
      const double world_score = 0.2 + c.rng.NextDouble() * 0.7;
      const ExtendedGraphSystem fresh = BuildExtendedSystem(
          c.fragment, c.world, world_score, c.global_size, weighting);
      ExtendedSystemCache cache;
      const ExtendedGraphSystem& cached =
          cache.Prepare(c.fragment, c.world, world_score, c.global_size, weighting);
      ExpectSystemsIdentical(cached, fresh);
    }
  }
}

TEST(ExtendedSystemCacheTest, RescaleMatchesFreshBuildAtNewDenominator) {
  for (uint64_t seed = 11; seed <= 16; ++seed) {
    RandomCase c(seed);
    ExtendedSystemCache cache;
    cache.Prepare(c.fragment, c.world, 0.8, c.global_size,
                  WorldLinkWeighting::kScoreProportional);
    // The denominator guard loop shrinks alpha_w; each Rescale must agree
    // exactly with a from-scratch build at that denominator.
    for (const double d : {0.55, 0.31, 0.07, 0.8}) {
      const ExtendedGraphSystem& rescaled = cache.Rescale(d);
      const ExtendedGraphSystem fresh =
          BuildExtendedSystem(c.fragment, c.world, d, c.global_size);
      ExpectSystemsIdentical(rescaled, fresh);
    }
  }
}

TEST(ExtendedSystemCacheTest, ReusedAcrossWorldNodeChanges) {
  RandomCase c(23);
  ExtendedSystemCache cache;
  cache.Prepare(c.fragment, c.world, 0.6, c.global_size,
                WorldLinkWeighting::kScoreProportional);
  // A meeting teaches the peer new external in-links; the next Prepare must
  // pick them up while still reusing the local rows.
  std::vector<graph::PageId> targets = {c.fragment.GlobalId(0)};
  const graph::PageId external = c.ExternalPage();
  c.world.Observe(external, OutDegreeOf(external), 0.015, targets,
                  CombineMode::kTakeMax);
  c.world.ObserveDangling(external, 0.004, CombineMode::kTakeMax);
  const ExtendedGraphSystem& cached =
      cache.Prepare(c.fragment, c.world, 0.45, c.global_size,
                    WorldLinkWeighting::kScoreProportional);
  const ExtendedGraphSystem fresh =
      BuildExtendedSystem(c.fragment, c.world, 0.45, c.global_size);
  ExpectSystemsIdentical(cached, fresh);
}

TEST(ExtendedSystemCacheTest, InvalidateFragmentRebuildsLocalRows) {
  RandomCase a(31);
  RandomCase b(32);
  ExtendedSystemCache cache;
  cache.Prepare(a.fragment, a.world, 0.5, a.global_size,
                WorldLinkWeighting::kScoreProportional);
  // ReplaceFragment semantics: drop the local rows, then serve a different
  // fragment correctly.
  cache.InvalidateFragment();
  const ExtendedGraphSystem& cached =
      cache.Prepare(b.fragment, b.world, 0.5, b.global_size,
                    WorldLinkWeighting::kScoreProportional);
  const ExtendedGraphSystem fresh =
      BuildExtendedSystem(b.fragment, b.world, 0.5, b.global_size);
  ExpectSystemsIdentical(cached, fresh);
}

TEST(ExtendedSystemCacheTest, ClampedFlagMatchesFreshBuild) {
  RandomCase c(41);
  // Force a super-stochastic world row: one stored score far above the
  // denominator.
  std::vector<graph::PageId> targets = {c.fragment.GlobalId(0)};
  const graph::PageId external = c.ExternalPage();
  c.world.Observe(external, OutDegreeOf(external), 0.9, targets,
                  CombineMode::kTakeMax);
  ExtendedSystemCache cache;
  const ExtendedGraphSystem& cached =
      cache.Prepare(c.fragment, c.world, 0.05, c.global_size,
                    WorldLinkWeighting::kScoreProportional);
  const ExtendedGraphSystem fresh =
      BuildExtendedSystem(c.fragment, c.world, 0.05, c.global_size);
  EXPECT_TRUE(fresh.world_row_clamped);
  ExpectSystemsIdentical(cached, fresh);
  // Rescaling to a healthy denominator clears the flag, exactly as a fresh
  // build would.
  const ExtendedGraphSystem& healthy = cache.Rescale(0.95);
  const ExtendedGraphSystem fresh_healthy =
      BuildExtendedSystem(c.fragment, c.world, 0.95, c.global_size);
  EXPECT_FALSE(fresh_healthy.world_row_clamped);
  ExpectSystemsIdentical(healthy, fresh_healthy);
}

TEST(ExtendedSystemCacheTest, StationaryDistributionIdenticalToFreshBuild) {
  // The end-to-end property JxpPeer relies on: running the local PageRank
  // on the cached system gives the *same* result as on a fresh build.
  for (uint64_t seed = 51; seed <= 54; ++seed) {
    RandomCase c(seed);
    ExtendedSystemCache cache;
    cache.Prepare(c.fragment, c.world, 0.9, c.global_size,
                  WorldLinkWeighting::kScoreProportional);
    const ExtendedGraphSystem& cached = cache.Rescale(0.62);
    const ExtendedGraphSystem fresh =
        BuildExtendedSystem(c.fragment, c.world, 0.62, c.global_size);
    markov::PowerIterationOptions options;
    options.tolerance = 1e-12;
    const auto from_cached = StationaryDistribution(cached.matrix, cached.teleport,
                                                    cached.dangling, {}, options);
    const auto from_fresh = StationaryDistribution(fresh.matrix, fresh.teleport,
                                                   fresh.dangling, {}, options);
    ASSERT_TRUE(from_cached.converged);
    EXPECT_EQ(from_cached.distribution, from_fresh.distribution);
    EXPECT_EQ(from_cached.iterations, from_fresh.iterations);
  }
}

TEST(ExtendedSystemCacheTest, CachedLocalRowsMatchTracksInvalidation) {
  // The incremental PageRank path delta-updates against the cached matrix
  // only when CachedLocalRowsMatch says the local rows survived in place;
  // it must go false on InvalidateFragment and on a fragment-size mismatch.
  RandomCase c(61);
  ExtendedSystemCache cache;
  EXPECT_FALSE(cache.CachedLocalRowsMatch(c.fragment.NumLocalPages()));
  cache.Prepare(c.fragment, c.world, 0.7, c.global_size,
                WorldLinkWeighting::kScoreProportional);
  EXPECT_TRUE(cache.CachedLocalRowsMatch(c.fragment.NumLocalPages()));
  // Prepare and Rescale keep the local rows cached.
  cache.Rescale(0.4);
  EXPECT_TRUE(cache.CachedLocalRowsMatch(c.fragment.NumLocalPages()));
  // A different fragment size can never match the cached rows.
  EXPECT_FALSE(cache.CachedLocalRowsMatch(c.fragment.NumLocalPages() + 1));
  // ReplaceFragment semantics: invalidation drops the claim until the next
  // Prepare rebuilds the rows for the new fragment.
  cache.InvalidateFragment();
  EXPECT_FALSE(cache.CachedLocalRowsMatch(c.fragment.NumLocalPages()));
  cache.Prepare(c.fragment, c.world, 0.7, c.global_size,
                WorldLinkWeighting::kScoreProportional);
  EXPECT_TRUE(cache.CachedLocalRowsMatch(c.fragment.NumLocalPages()));
}

}  // namespace
}  // namespace core
}  // namespace jxp
