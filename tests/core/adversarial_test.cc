// Tests for the adversarial-peer extension (the paper's Section 7 open
// problem): attack models corrupt outgoing meeting messages; honest peers'
// defenses (mass test + overlap-divergence test) bound the damage.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/jxp_peer.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace core {
namespace {

struct AdversarialFixture {
  AdversarialFixture() {
    Random rng(71);
    graph = graph::BarabasiAlbert(120, 3, rng);
    pagerank::PageRankOptions pr_options;
    pr_options.tolerance = 1e-14;
    truth = ComputePageRank(graph, pr_options);
    // Three overlapping fragments covering the graph.
    fragments.resize(3);
    for (graph::PageId p = 0; p < graph.NumNodes(); ++p) {
      fragments[rng.NextBounded(3)].push_back(p);
      fragments[rng.NextBounded(3)].push_back(p);  // Heavy overlap.
    }
  }

  /// Builds peers: peer 0 runs `attack`; all run `defense`.
  std::vector<JxpPeer> MakePeers(const AttackOptions& attack,
                                 const DefenseOptions& defense) {
    JxpOptions honest;
    honest.pr_tolerance = 1e-12;
    honest.defense = defense;
    JxpOptions evil = honest;
    evil.attack = attack;
    std::vector<JxpPeer> peers;
    for (size_t i = 0; i < fragments.size(); ++i) {
      peers.emplace_back(static_cast<p2p::PeerId>(i),
                         graph::Subgraph::Induce(graph, fragments[i]), graph.NumNodes(),
                         i == 0 ? evil : honest);
    }
    return peers;
  }

  /// Runs random meetings and returns the worst over-estimation factor
  /// max(alpha/pi) across honest peers' pages.
  double RunAndMeasureInflation(std::vector<JxpPeer>& peers, int meetings) {
    Random rng(72);
    for (int m = 0; m < meetings; ++m) {
      const size_t a = rng.NextBounded(peers.size());
      size_t b = rng.NextBounded(peers.size() - 1);
      if (b >= a) ++b;
      JxpPeer::Meet(peers[a], peers[b]);
    }
    double worst = 0;
    for (size_t p = 1; p < peers.size(); ++p) {  // Honest peers only.
      const graph::Subgraph& fragment = peers[p].fragment();
      for (graph::Subgraph::LocalIndex i = 0; i < fragment.NumLocalPages(); ++i) {
        const double pi = truth.scores[fragment.GlobalId(i)];
        worst = std::max(worst, peers[p].local_scores()[i] / pi);
      }
    }
    return worst;
  }

  graph::Graph graph;
  pagerank::PageRankResult truth;
  std::vector<std::vector<graph::PageId>> fragments;
};

TEST(AdversarialTest, InflationAttackDistortsUndefendedNetwork) {
  AdversarialFixture fx;
  AttackOptions attack;
  attack.type = AttackOptions::Type::kScoreInflation;
  attack.inflation_factor = 25.0;
  auto peers = fx.MakePeers(attack, DefenseOptions());  // Defense off.
  const double inflation = fx.RunAndMeasureInflation(peers, 120);
  // Honest peers absorbed inflated world knowledge: scores overshoot the
  // true PageRank substantially.
  EXPECT_GT(inflation, 1.5);
}

TEST(AdversarialTest, MassTestStopsInflationAttack) {
  AdversarialFixture fx;
  AttackOptions attack;
  attack.type = AttackOptions::Type::kScoreInflation;
  attack.inflation_factor = 25.0;
  DefenseOptions defense;
  defense.enabled = true;
  auto peers = fx.MakePeers(attack, defense);
  const double inflation = fx.RunAndMeasureInflation(peers, 120);
  EXPECT_LT(inflation, 1.01);
  // The honest peers actually rejected messages.
  EXPECT_GT(peers[1].rejected_meetings() + peers[2].rejected_meetings(), 0u);
}

TEST(AdversarialTest, DivergenceTestCatchesNoiseThatPassesMassTest) {
  AdversarialFixture fx;
  AttackOptions attack;
  attack.type = AttackOptions::Type::kRandomScores;
  DefenseOptions defense;
  defense.enabled = true;
  defense.max_reported_mass = 1e9;  // Disable the mass test: isolate the
                                    // divergence test.
  defense.max_overlap_divergence = 8.0;
  auto peers = fx.MakePeers(attack, defense);
  fx.RunAndMeasureInflation(peers, 120);
  EXPECT_GT(peers[1].rejected_meetings() + peers[2].rejected_meetings(), 0u);
}

TEST(AdversarialTest, DefenseDoesNotRejectHonestPeers) {
  AdversarialFixture fx;
  DefenseOptions defense;
  defense.enabled = true;
  auto peers = fx.MakePeers(AttackOptions(), defense);  // Everyone honest.
  const double inflation = fx.RunAndMeasureInflation(peers, 200);
  for (const JxpPeer& peer : peers) {
    EXPECT_EQ(peer.rejected_meetings(), 0u) << "false positive at peer " << peer.id();
  }
  // And convergence is unharmed (safety bound still holds).
  EXPECT_LE(inflation, 1.0 + 1e-9);
}

TEST(AdversarialTest, HonestNetworkAccuracyUnaffectedByDefense) {
  AdversarialFixture fx;
  DefenseOptions defense;
  defense.enabled = true;
  auto defended = fx.MakePeers(AttackOptions(), defense);
  auto undefended = fx.MakePeers(AttackOptions(), DefenseOptions());
  fx.RunAndMeasureInflation(defended, 150);
  fx.RunAndMeasureInflation(undefended, 150);
  for (size_t p = 0; p < defended.size(); ++p) {
    for (size_t i = 0; i < defended[p].local_scores().size(); ++i) {
      EXPECT_NEAR(defended[p].local_scores()[i], undefended[p].local_scores()[i], 1e-12);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace jxp
