// Tests for the local convergence heuristic: a peer watches its own
// (monotone) world score to decide when its view has settled.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/jxp_peer.h"
#include "graph/generators.h"
#include "graph/subgraph.h"

namespace jxp {
namespace core {
namespace {

struct ConvergenceFixture {
  ConvergenceFixture() {
    Random rng(91);
    graph = graph::BarabasiAlbert(100, 3, rng);
    std::vector<std::vector<graph::PageId>> fragments(3);
    for (graph::PageId p = 0; p < graph.NumNodes(); ++p) {
      fragments[rng.NextBounded(3)].push_back(p);
      if (rng.NextBool(0.3)) fragments[rng.NextBounded(3)].push_back(p);
    }
    JxpOptions options;
    options.pr_tolerance = 1e-12;
    for (size_t i = 0; i < 3; ++i) {
      peers.emplace_back(static_cast<p2p::PeerId>(i),
                         graph::Subgraph::Induce(graph, fragments[i]), graph.NumNodes(),
                         options);
    }
  }

  void RunMeetings(int count) {
    Random rng(92);
    for (int m = 0; m < count; ++m) {
      const size_t a = rng.NextBounded(3);
      size_t b = rng.NextBounded(2);
      if (b >= a) ++b;
      JxpPeer::Meet(peers[a], peers[b]);
    }
  }

  graph::Graph graph;
  std::vector<JxpPeer> peers;
};

TEST(ConvergenceDetectionTest, FalseBeforeEnoughMeetings) {
  ConvergenceFixture fx;
  EXPECT_FALSE(fx.peers[0].HasLocallyConverged(5, 1e-3));
  fx.RunMeetings(4);  // Some peer still has < 5 meetings... check peer 0.
  if (fx.peers[0].num_meetings() < 5) {
    EXPECT_FALSE(fx.peers[0].HasLocallyConverged(5, 1e9));
  }
}

TEST(ConvergenceDetectionTest, DetectsSettledWorldScore) {
  ConvergenceFixture fx;
  fx.RunMeetings(300);
  for (const JxpPeer& peer : fx.peers) {
    EXPECT_TRUE(peer.HasLocallyConverged(10, 1e-6)) << "peer " << peer.id();
  }
}

TEST(ConvergenceDetectionTest, EarlyNetworkIsNotSettled) {
  ConvergenceFixture fx;
  fx.RunMeetings(6);
  // Right after the first meetings the world scores are still moving by
  // whole percentage points.
  size_t settled = 0;
  for (const JxpPeer& peer : fx.peers) {
    if (peer.num_meetings() >= 3 && peer.HasLocallyConverged(3, 1e-9)) ++settled;
  }
  EXPECT_EQ(settled, 0u);
}

TEST(ConvergenceDetectionTest, HistoryIsMonotoneAndMatchesCount) {
  ConvergenceFixture fx;
  fx.RunMeetings(100);
  for (const JxpPeer& peer : fx.peers) {
    const auto& history = peer.world_score_history();
    EXPECT_EQ(history.size(), peer.num_meetings());
    for (size_t i = 1; i < history.size(); ++i) {
      EXPECT_LE(history[i], history[i - 1] + 1e-9);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace jxp
