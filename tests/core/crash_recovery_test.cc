// Crash-recovery round trip: a simulation that saves every peer mid-run,
// reloads the saved states, and continues must be bit-identical to an
// uninterrupted run — the state files capture *everything* score-relevant,
// and serialization must not perturb a single bit (state_io canonicalizes
// float summation order for exactly this reason).

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/simulation.h"
#include "graph/generators.h"

namespace jxp {
namespace core {
namespace {

/// Overlapping fragments: pages by residue, every 5th page replicated on
/// the next peer (exercises replica handling in save/restore).
std::vector<std::vector<graph::PageId>> MakeFragments(size_t num_nodes,
                                                      size_t num_peers) {
  std::vector<std::vector<graph::PageId>> fragments(num_peers);
  for (graph::PageId p = 0; p < num_nodes; ++p) {
    fragments[p % num_peers].push_back(p);
    if (p % 5 == 0) fragments[(p + 1) % num_peers].push_back(p);
  }
  return fragments;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Random rng(21);
    graph_ = graph::BarabasiAlbert(150, 3, rng);
    dir_ = ::testing::TempDir() + "jxp_recovery_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }

  SimulationConfig Config() const {
    SimulationConfig config;
    config.jxp.pr_tolerance = 1e-12;
    config.jxp.pr_max_iterations = 400;
    config.seed = 97;
    return config;
  }

  JxpSimulation MakeSim(const SimulationConfig& config) {
    return JxpSimulation(graph_, MakeFragments(150, 5), config);
  }

  static void ExpectIdenticalScores(const JxpSimulation& a, const JxpSimulation& b) {
    ASSERT_EQ(a.peers().size(), b.peers().size());
    EXPECT_EQ(a.meetings_done(), b.meetings_done());
    EXPECT_EQ(a.network().TotalTrafficBytes(), b.network().TotalTrafficBytes());
    for (size_t p = 0; p < a.peers().size(); ++p) {
      // EXPECT_EQ, not NEAR: the runs must agree bit for bit.
      EXPECT_EQ(a.peers()[p].world_score(), b.peers()[p].world_score())
          << "world score of peer " << p;
      EXPECT_EQ(a.peers()[p].local_scores(), b.peers()[p].local_scores())
          << "local scores of peer " << p;
    }
  }

  graph::Graph graph_;
  std::string dir_;
};

TEST_F(CrashRecoveryTest, SequentialResumeIsBitIdentical) {
  JxpSimulation uninterrupted = MakeSim(Config());
  uninterrupted.RunMeetings(200);

  JxpSimulation interrupted = MakeSim(Config());
  interrupted.RunMeetings(100);
  ASSERT_TRUE(interrupted.SaveAllPeerStates(dir_).ok());
  ASSERT_TRUE(interrupted.LoadAllPeerStates(dir_).ok());
  interrupted.RunMeetings(100);

  ExpectIdenticalScores(uninterrupted, interrupted);
}

TEST_F(CrashRecoveryTest, ParallelResumeIsBitIdentical) {
  SimulationConfig config = Config();
  config.num_threads = 4;
  // The parallel driver schedules in rounds, so a 100+100 split truncates
  // the round sequence differently than one 200-meeting call would; the
  // reference run splits at the same boundary to isolate the reload effect.
  JxpSimulation uninterrupted = MakeSim(config);
  uninterrupted.RunMeetingsParallel(100);
  uninterrupted.RunMeetingsParallel(100);

  JxpSimulation interrupted = MakeSim(config);
  interrupted.RunMeetingsParallel(100);
  ASSERT_TRUE(interrupted.SaveAllPeerStates(dir_).ok());
  ASSERT_TRUE(interrupted.LoadAllPeerStates(dir_).ok());
  interrupted.RunMeetingsParallel(100);

  ExpectIdenticalScores(uninterrupted, interrupted);
}

TEST_F(CrashRecoveryTest, CrossObjectRestoreMatchesSavedState) {
  JxpSimulation original = MakeSim(Config());
  original.RunMeetings(120);
  ASSERT_TRUE(original.SaveAllPeerStates(dir_).ok());

  // A freshly constructed simulation (same world, same config) restored
  // from the files carries exactly the saved scores.
  JxpSimulation restored = MakeSim(Config());
  ASSERT_TRUE(restored.LoadAllPeerStates(dir_).ok());
  for (size_t p = 0; p < original.peers().size(); ++p) {
    EXPECT_EQ(restored.peers()[p].world_score(), original.peers()[p].world_score());
    EXPECT_EQ(restored.peers()[p].local_scores(), original.peers()[p].local_scores());
  }
}

TEST_F(CrashRecoveryTest, SaveLoadIsIdempotent) {
  // Loading a peer's own just-saved state must be a pure no-op, even when
  // repeated (no drift from repeated serialization round trips).
  JxpSimulation sim = MakeSim(Config());
  sim.RunMeetings(60);
  ASSERT_TRUE(sim.SaveAllPeerStates(dir_).ok());
  ASSERT_TRUE(sim.LoadAllPeerStates(dir_).ok());
  const std::vector<double> world_after_first = [&] {
    std::vector<double> w;
    for (const JxpPeer& peer : sim.peers()) w.push_back(peer.world_score());
    return w;
  }();
  ASSERT_TRUE(sim.SaveAllPeerStates(dir_).ok());
  ASSERT_TRUE(sim.LoadAllPeerStates(dir_).ok());
  for (size_t p = 0; p < sim.peers().size(); ++p) {
    EXPECT_EQ(sim.peers()[p].world_score(), world_after_first[p]);
  }
}

TEST_F(CrashRecoveryTest, LoadFromMissingDirectoryFails) {
  JxpSimulation sim = MakeSim(Config());
  sim.RunMeetings(10);
  const Status status = sim.LoadAllPeerStates(dir_ + "_absent");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

TEST_F(CrashRecoveryTest, SaveToUncreatableDirectoryFails) {
  // A regular file where a directory component is needed makes
  // create_directories fail; that must surface as a Status, not an abort.
  const std::string blocker = dir_ + "_file";
  { std::ofstream out(blocker); out << "not a directory"; }
  JxpSimulation sim = MakeSim(Config());
  const Status status = sim.SaveAllPeerStates(blocker + "/sub");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  std::remove(blocker.c_str());
}

}  // namespace
}  // namespace core
}  // namespace jxp
