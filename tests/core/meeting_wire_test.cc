#include "core/meeting_wire.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/jxp_peer.h"
#include "core/simulation.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "p2p/faults.h"

namespace jxp {
namespace core {
namespace {

/// A realistic graph + two overlapping fragments of >= 32 pages each (the
/// regime the wire format is designed for; tiny fragments can lose to the
/// analytic model on frame-header overhead alone).
struct TwoPeerWorld {
  graph::Graph graph;
  std::vector<graph::PageId> pages_a;
  std::vector<graph::PageId> pages_b;
};

TwoPeerWorld MakeWorld(uint64_t seed) {
  TwoPeerWorld world;
  Random rng(seed);
  world.graph = graph::BarabasiAlbert(300, 3, rng);
  for (graph::PageId p = 0; p < 180; ++p) world.pages_a.push_back(p);
  for (graph::PageId p = 120; p < 300; ++p) world.pages_b.push_back(p);
  return world;
}

JxpOptions WireOptions(MeetingWireMode mode) {
  JxpOptions options;
  options.pr_tolerance = 1e-12;
  options.pr_max_iterations = 500;
  options.wire_mode = mode;
  return options;
}

TEST(MeetingWireTest, MessageRoundTripsThroughTheCodec) {
  const TwoPeerWorld world = MakeWorld(11);
  const JxpOptions options = WireOptions(MeetingWireMode::kEstimated);
  JxpPeer a(0, graph::Subgraph::Induce(world.graph, world.pages_a),
            world.graph.NumNodes(), options);
  JxpPeer b(1, graph::Subgraph::Induce(world.graph, world.pages_b),
            world.graph.NumNodes(), options);
  JxpPeer::Meet(a, b);  // Populate a's world node with real knowledge.
  ASSERT_GT(a.world_node().NumEntries(), 0u);

  const std::vector<uint8_t> bytes = EncodeMeetingMessage(
      a.fragment(), a.local_scores(), a.world_node(), &a.page_sketch());
  const DecodedMeetingMessage decoded = DecodeMeetingMessage(bytes);
  ASSERT_TRUE(decoded.error.ok()) << decoded.error.ToString();
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());

  ASSERT_NE(decoded.fragment, nullptr);
  ASSERT_EQ(decoded.fragment->NumLocalPages(), a.fragment().NumLocalPages());
  ASSERT_EQ(decoded.scores.size(), a.local_scores().size());
  for (size_t i = 0; i < decoded.scores.size(); ++i) {
    const auto local = static_cast<graph::Subgraph::LocalIndex>(i);
    EXPECT_EQ(decoded.fragment->GlobalId(local), a.fragment().GlobalId(local));
    const auto expected = a.fragment().Successors(local);
    const auto got = decoded.fragment->Successors(local);
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), got.begin()));
    // Quantization rounds down, never up (Theorem 5.3 safety).
    EXPECT_LE(decoded.scores[i], a.local_scores()[i]);
    EXPECT_NEAR(decoded.scores[i], a.local_scores()[i],
                a.local_scores()[i] * 1e-6 + 1e-30);
  }

  EXPECT_EQ(decoded.world.NumEntries(), a.world_node().NumEntries());
  EXPECT_EQ(decoded.world.NumLinks(), a.world_node().NumLinks());
  for (const auto& [page, info] : a.world_node().entries()) {
    const ExternalPageInfo* got = decoded.world.Find(page);
    ASSERT_NE(got, nullptr) << "world entry " << page;
    EXPECT_EQ(got->out_degree, info.out_degree);
    EXPECT_EQ(got->targets, info.targets);
    EXPECT_LE(got->score, info.score);
  }

  ASSERT_NE(decoded.sketch, nullptr);
  EXPECT_EQ(decoded.sketch->seed(), a.page_sketch().seed());
  ASSERT_EQ(decoded.sketch->num_buckets(), a.page_sketch().num_buckets());
  EXPECT_TRUE(std::equal(a.page_sketch().bitmaps().begin(),
                         a.page_sketch().bitmaps().end(),
                         decoded.sketch->bitmaps().begin()));
}

TEST(MeetingWireTest, MeasuredMeetingMatchesEstimatedScoresClosely) {
  const TwoPeerWorld world = MakeWorld(23);
  const JxpOptions estimated = WireOptions(MeetingWireMode::kEstimated);
  const JxpOptions measured = WireOptions(MeetingWireMode::kMeasured);
  const size_t n = world.graph.NumNodes();

  JxpPeer ae(0, graph::Subgraph::Induce(world.graph, world.pages_a), n, estimated);
  JxpPeer be(1, graph::Subgraph::Induce(world.graph, world.pages_b), n, estimated);
  JxpPeer am(0, graph::Subgraph::Induce(world.graph, world.pages_a), n, measured);
  JxpPeer bm(1, graph::Subgraph::Induce(world.graph, world.pages_b), n, measured);

  for (int round = 0; round < 3; ++round) {
    JxpPeer::Meet(ae, be);
    JxpPeer::Meet(am, bm);
  }
  // The only difference is the wire's float quantization of scores, so the
  // two runs agree to float precision.
  EXPECT_NEAR(am.world_score(), ae.world_score(), 1e-5);
  for (size_t i = 0; i < ae.local_scores().size(); ++i) {
    EXPECT_NEAR(am.local_scores()[i], ae.local_scores()[i], 1e-6) << "page " << i;
  }
}

TEST(MeetingWireTest, MeasuredBytesStayBelowAnalyticEstimate) {
  const TwoPeerWorld world = MakeWorld(37);
  const JxpOptions options = WireOptions(MeetingWireMode::kMeasured);
  const size_t n = world.graph.NumNodes();
  JxpPeer a(0, graph::Subgraph::Induce(world.graph, world.pages_a), n, options);
  JxpPeer b(1, graph::Subgraph::Induce(world.graph, world.pages_b), n, options);

  for (int round = 0; round < 3; ++round) {
    const MeetingOutcome outcome = JxpPeer::Meet(a, b);
    EXPECT_GT(outcome.bytes_sent_initiator, 0.0);
    EXPECT_GT(outcome.bytes_sent_partner, 0.0);
    // Delta + VByte + float quantization must beat the analytic 8-bytes-per
    // id model at realistic fragment sizes.
    EXPECT_LT(outcome.bytes_sent_initiator, outcome.estimated_bytes_initiator);
    EXPECT_LT(outcome.bytes_sent_partner, outcome.estimated_bytes_partner);
    EXPECT_LT(outcome.wire_bytes, outcome.estimated_wire_bytes);
    EXPECT_DOUBLE_EQ(outcome.wire_bytes,
                     outcome.bytes_sent_initiator + outcome.bytes_sent_partner);
  }
}

TEST(MeetingWireTest, EstimatedModeReportsIdenticalMeasuredAndEstimatedBytes) {
  const TwoPeerWorld world = MakeWorld(41);
  const JxpOptions options = WireOptions(MeetingWireMode::kEstimated);
  const size_t n = world.graph.NumNodes();
  JxpPeer a(0, graph::Subgraph::Induce(world.graph, world.pages_a), n, options);
  JxpPeer b(1, graph::Subgraph::Induce(world.graph, world.pages_b), n, options);
  const MeetingOutcome outcome = JxpPeer::Meet(a, b);
  EXPECT_DOUBLE_EQ(outcome.estimated_bytes_initiator, outcome.bytes_sent_initiator);
  EXPECT_DOUBLE_EQ(outcome.estimated_bytes_partner, outcome.bytes_sent_partner);
  EXPECT_DOUBLE_EQ(outcome.estimated_wire_bytes, outcome.wire_bytes);
}

TEST(MeetingWireTest, DroppedMessageSuppressesOneSide) {
  const TwoPeerWorld world = MakeWorld(53);
  const JxpOptions options = WireOptions(MeetingWireMode::kMeasured);
  const size_t n = world.graph.NumNodes();
  JxpPeer a(0, graph::Subgraph::Induce(world.graph, world.pages_a), n, options);
  JxpPeer b(1, graph::Subgraph::Induce(world.graph, world.pages_b), n, options);

  p2p::MeetingFaultDecision faults;
  faults.drop_to_initiator = true;
  const MeetingOutcome outcome = JxpPeer::Meet(a, b, faults);
  EXPECT_FALSE(outcome.applied_initiator);
  EXPECT_TRUE(outcome.applied_partner);
  EXPECT_EQ(a.num_meetings(), 0u);
  EXPECT_EQ(b.num_meetings(), 1u);
  // The partner's whole message was wasted.
  EXPECT_DOUBLE_EQ(outcome.wasted_bytes_partner, outcome.bytes_sent_partner);
}

TEST(MeetingWireTest, BitCorruptionSalvagesPrefixOrDegeneratesToDrop) {
  const TwoPeerWorld world = MakeWorld(67);
  const JxpOptions options = WireOptions(MeetingWireMode::kMeasured);
  const size_t n = world.graph.NumNodes();

  for (const double offset : {0.0, 0.5, 0.95}) {
    JxpPeer a(0, graph::Subgraph::Induce(world.graph, world.pages_a), n, options);
    JxpPeer b(1, graph::Subgraph::Induce(world.graph, world.pages_b), n, options);
    p2p::MeetingFaultDecision faults;
    faults.corrupt_to_initiator = true;
    faults.corrupt_offset_to_initiator = offset;
    faults.corrupt_bit_to_initiator = 3;
    const MeetingOutcome outcome = JxpPeer::Meet(a, b, faults);

    // The damage is detected, never applied wholesale: either the initiator
    // salvaged a decodable prefix (some of the partner's bytes were wasted)
    // or nothing usable arrived (degenerate drop).
    if (outcome.applied_initiator) {
      EXPECT_GT(outcome.wasted_bytes_partner, 0.0) << "offset " << offset;
      EXPECT_LT(outcome.wasted_bytes_partner, outcome.bytes_sent_partner);
    } else {
      EXPECT_DOUBLE_EQ(outcome.wasted_bytes_partner, outcome.bytes_sent_partner);
      EXPECT_EQ(a.num_meetings(), 0u);
    }
    // Safety: scores stay a sub-distribution on both sides.
    for (const JxpPeer* peer : {&a, &b}) {
      double total = peer->world_score();
      for (double s : peer->local_scores()) {
        EXPECT_GE(s, 0.0);
        total += s;
      }
      EXPECT_NEAR(total, 1.0, 1e-6);
    }
  }
}

TEST(MeetingWireTest, SimulationAccountsMeasuredAndEstimatedTraffic) {
  Random rng(71);
  const graph::Graph g = graph::BarabasiAlbert(240, 3, rng);
  std::vector<std::vector<graph::PageId>> fragments(4);
  for (graph::PageId p = 0; p < g.NumNodes(); ++p) {
    fragments[p % 4].push_back(p);
    fragments[(p + 1) % 4].push_back(p);  // 2x overlap.
  }

  SimulationConfig config;
  config.jxp = WireOptions(MeetingWireMode::kMeasured);
  config.seed = 5;
  config.eval_top_k = 50;
  JxpSimulation sim(g, fragments, config);
  sim.RunMeetings(20);

  const double measured = sim.network().TotalTrafficBytes();
  const double estimated = sim.total_estimated_traffic_bytes();
  EXPECT_GT(measured, 0.0);
  EXPECT_GT(estimated, 0.0);
  EXPECT_LT(measured, estimated);

  // In estimated mode the two totals coincide exactly.
  SimulationConfig est_config = config;
  est_config.jxp.wire_mode = MeetingWireMode::kEstimated;
  JxpSimulation est_sim(g, fragments, est_config);
  est_sim.RunMeetings(20);
  EXPECT_DOUBLE_EQ(est_sim.total_estimated_traffic_bytes(),
                   est_sim.network().TotalTrafficBytes());
}

TEST(MeetingWireTest, SimulationWithCorruptionFaultsStaysSafe) {
  Random rng(73);
  const graph::Graph g = graph::BarabasiAlbert(200, 3, rng);
  std::vector<std::vector<graph::PageId>> fragments(4);
  for (graph::PageId p = 0; p < g.NumNodes(); ++p) fragments[p % 4].push_back(p);

  SimulationConfig config;
  config.jxp = WireOptions(MeetingWireMode::kMeasured);
  config.seed = 9;
  config.eval_top_k = 50;
  config.faults.corruption_probability = 0.5;
  config.faults.message_drop_probability = 0.1;
  JxpSimulation sim(g, fragments, config);
  sim.RunMeetings(40);

  ASSERT_NE(sim.fault_stats(), nullptr);
  EXPECT_GT(sim.fault_stats()->corruptions, 0u);
  for (const JxpPeer& peer : sim.peers()) {
    double total = peer.world_score();
    for (double s : peer.local_scores()) {
      EXPECT_GE(s, 0.0);
      total += s;
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
  }
}

}  // namespace
}  // namespace core
}  // namespace jxp
