// Tests for the distributed graph-size estimation extension (dropping the
// paper's "N is known" assumption via unioned Flajolet-Martin sketches).

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/jxp_peer.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace core {
namespace {

JxpOptions EstimatingOptions() {
  JxpOptions options;
  options.pr_tolerance = 1e-12;
  options.estimate_global_size = true;
  options.authoritative_refresh = true;
  return options;
}

TEST(SizeEstimationTest, InitialEstimateCoversOwnNeighborhood) {
  Random rng(1);
  const graph::Graph g = graph::BarabasiAlbert(2000, 3, rng);
  std::vector<graph::PageId> pages;
  for (graph::PageId p = 0; p < 500; ++p) pages.push_back(p);
  JxpPeer peer(0, graph::Subgraph::Induce(g, pages),
               /*global_size (initial guess only)=*/501, EstimatingOptions());
  // The peer knows its 500 pages plus the link targets it saw; the estimate
  // must be of that order, not the bogus initial guess.
  EXPECT_GT(peer.global_size(), 400u);
  EXPECT_LT(peer.global_size(), 2600u);
}

TEST(SizeEstimationTest, EstimateConvergesThroughMeetings) {
  Random rng(2);
  const size_t true_n = 3000;
  const graph::Graph g = graph::BarabasiAlbert(true_n, 3, rng);
  // Four peers, disjoint quarters: no single peer sees most of the graph.
  std::vector<JxpPeer> peers;
  for (int q = 0; q < 4; ++q) {
    std::vector<graph::PageId> pages;
    for (graph::PageId p = static_cast<graph::PageId>(q); p < true_n; p += 4) {
      pages.push_back(p);
    }
    peers.emplace_back(q, graph::Subgraph::Induce(g, pages), /*initial guess=*/800,
                       EstimatingOptions());
  }
  for (int round = 0; round < 4; ++round) {
    for (size_t a = 0; a < peers.size(); ++a) {
      for (size_t b = a + 1; b < peers.size(); ++b) {
        JxpPeer::Meet(peers[a], peers[b]);
      }
    }
  }
  // FM-sketch standard error with 256 buckets is ~5%; allow 3 sigma.
  for (const JxpPeer& peer : peers) {
    EXPECT_NEAR(static_cast<double>(peer.global_size()), static_cast<double>(true_n),
                true_n * 0.15)
        << "peer " << peer.id();
  }
}

TEST(SizeEstimationTest, ScoresStillConvergeWithEstimatedN) {
  Random rng(3);
  const graph::Graph g = graph::BarabasiAlbert(120, 3, rng);
  pagerank::PageRankOptions pr_options;
  pr_options.tolerance = 1e-14;
  pr_options.max_iterations = 1000;
  const pagerank::PageRankResult truth = ComputePageRank(g, pr_options);

  std::vector<std::vector<graph::PageId>> fragments(3);
  for (graph::PageId p = 0; p < g.NumNodes(); ++p) {
    fragments[rng.NextBounded(3)].push_back(p);
    if (rng.NextBool(0.3)) fragments[rng.NextBounded(3)].push_back(p);
  }
  std::vector<JxpPeer> peers;
  for (size_t i = 0; i < 3; ++i) {
    peers.emplace_back(static_cast<p2p::PeerId>(i),
                       graph::Subgraph::Induce(g, fragments[i]),
                       /*bad initial guess=*/fragments[i].size() + 1,
                       EstimatingOptions());
  }
  for (int m = 0; m < 450; ++m) {
    const size_t a = rng.NextBounded(3);
    size_t b = rng.NextBounded(2);
    if (b >= a) ++b;
    JxpPeer::Meet(peers[a], peers[b]);
  }
  // The sketch estimate of N has ~5% noise, which bounds the achievable
  // score accuracy (scores are exact only for exact N). Require the ranking
  // mass to be close in relative terms.
  for (const JxpPeer& peer : peers) {
    for (graph::PageId p : peer.fragment().Pages()) {
      const double alpha = peer.ScoreOfGlobal(p);
      const double pi = truth.scores[p];
      EXPECT_NEAR(alpha, pi, 0.30 * pi + 1e-4) << "page " << p;
    }
  }
}

TEST(SizeEstimationTest, SketchBytesCountedInMessages) {
  Random rng(4);
  const graph::Graph g = graph::BarabasiAlbert(100, 3, rng);
  std::vector<graph::PageId> pages;
  for (graph::PageId p = 0; p < 50; ++p) pages.push_back(p);
  JxpOptions plain;
  plain.estimate_global_size = false;
  JxpPeer without(0, graph::Subgraph::Induce(g, pages), g.NumNodes(), plain);
  JxpPeer with(1, graph::Subgraph::Induce(g, pages), g.NumNodes(), EstimatingOptions());
  JxpPeer partner(2, graph::Subgraph::Induce(g, {50, 51, 52}), g.NumNodes(), plain);

  const MeetingOutcome a = JxpPeer::Meet(without, partner);
  JxpOptions partner_est = EstimatingOptions();
  JxpPeer partner2(3, graph::Subgraph::Induce(g, {50, 51, 52}), g.NumNodes(),
                   partner_est);
  const MeetingOutcome b = JxpPeer::Meet(with, partner2);
  EXPECT_GT(b.bytes_sent_initiator, a.bytes_sent_initiator);
}

}  // namespace
}  // namespace core
}  // namespace jxp
