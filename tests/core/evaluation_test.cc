#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/subgraph.h"

namespace jxp {
namespace core {
namespace {

graph::Graph SmallGraph() {
  graph::GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 0);
  return builder.Build();
}

TEST(EvaluationTest, AveragesReplicatedPages) {
  const graph::Graph g = SmallGraph();
  JxpOptions options;
  std::vector<JxpPeer> peers;
  // Page 2 is replicated on both peers.
  peers.emplace_back(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), options);
  peers.emplace_back(1, graph::Subgraph::Induce(g, {2, 3, 4, 5}), g.NumNodes(), options);

  const auto scores = BuildGlobalJxpScores(peers, nullptr);
  EXPECT_EQ(scores.size(), 6u);
  const double expected_page2 =
      0.5 * (peers[0].ScoreOfGlobal(2) + peers[1].ScoreOfGlobal(2));
  EXPECT_DOUBLE_EQ(scores.at(2), expected_page2);
  EXPECT_DOUBLE_EQ(scores.at(0), peers[0].ScoreOfGlobal(0));
}

TEST(EvaluationTest, NetworkFilterExcludesDepartedPeers) {
  const graph::Graph g = SmallGraph();
  JxpOptions options;
  p2p::Network network;
  std::vector<JxpPeer> peers;
  peers.emplace_back(network.AddPeer(), graph::Subgraph::Induce(g, {0, 1, 2}),
                     g.NumNodes(), options);
  peers.emplace_back(network.AddPeer(), graph::Subgraph::Induce(g, {3, 4, 5}),
                     g.NumNodes(), options);
  network.Leave(1);
  const auto scores = BuildGlobalJxpScores(peers, &network);
  EXPECT_EQ(scores.size(), 3u);
  EXPECT_TRUE(scores.count(0));
  EXPECT_FALSE(scores.count(4));
}

TEST(EvaluationTest, AccuracyAgainstSelfIsPerfect) {
  const graph::Graph g = SmallGraph();
  JxpOptions options;
  std::vector<JxpPeer> peers;
  std::vector<graph::PageId> all = {0, 1, 2, 3, 4, 5};
  peers.emplace_back(0, graph::Subgraph::Induce(g, all), g.NumNodes(), options);
  const auto scores = BuildGlobalJxpScores(peers, nullptr);
  // A single whole-graph peer IS the centralized computation.
  std::vector<double> dense(6, 0.0);
  for (const auto& [page, score] : scores) dense[page] = score;
  const auto top = metrics::TopK(std::span<const double>(dense), 6);
  const AccuracyPoint point = EvaluateAccuracy(scores, top);
  EXPECT_DOUBLE_EQ(point.footrule, 0.0);
  EXPECT_NEAR(point.linear_error, 0.0, 1e-15);
}

TEST(EvaluationTest, MissingPagesPenalized) {
  // JXP table lacking a top page increases both metrics.
  std::unordered_map<graph::PageId, double> scores = {{0, 0.6}, {1, 0.4}};
  const std::vector<metrics::ScoredItem> top = {{0, 0.6}, {2, 0.4}};
  const AccuracyPoint point = EvaluateAccuracy(scores, top);
  EXPECT_GT(point.footrule, 0.0);
  EXPECT_GT(point.linear_error, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace jxp
