#include "core/jxp_peer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace core {
namespace {

JxpOptions TightOptions() {
  JxpOptions options;
  options.pr_tolerance = 1e-14;
  options.pr_max_iterations = 1000;
  return options;
}

/// A small fixed graph: 0 -> {1,2}, 1 -> {2}, 2 -> {0}, 3 -> {2}, 4 dangling.
graph::Graph SmallGraph() {
  graph::GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 2);
  return builder.Build();
}

TEST(JxpPeerTest, PeerHoldingWholeGraphComputesExactPageRank) {
  const graph::Graph g = SmallGraph();
  std::vector<graph::PageId> all = {0, 1, 2, 3, 4};
  JxpPeer peer(0, graph::Subgraph::Induce(g, all), g.NumNodes(), TightOptions());

  pagerank::PageRankOptions pr_options;
  pr_options.tolerance = 1e-14;
  pr_options.max_iterations = 1000;
  const pagerank::PageRankResult baseline = ComputePageRank(g, pr_options);
  ASSERT_TRUE(baseline.converged);

  for (graph::PageId p = 0; p < g.NumNodes(); ++p) {
    EXPECT_NEAR(peer.ScoreOfGlobal(p), baseline.scores[p], 1e-10) << "page " << p;
  }
  EXPECT_NEAR(peer.world_score(), 0.0, 1e-10);
}

TEST(JxpPeerTest, InitializationUnderestimatesPageRank) {
  const graph::Graph g = SmallGraph();
  pagerank::PageRankOptions pr_options;
  pr_options.tolerance = 1e-14;
  const pagerank::PageRankResult baseline = ComputePageRank(g, pr_options);

  JxpPeer peer(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), TightOptions());
  for (graph::PageId p : {0, 1, 2}) {
    EXPECT_GT(peer.ScoreOfGlobal(p), 0.0);
    EXPECT_LE(peer.ScoreOfGlobal(p), baseline.scores[p] + 1e-12) << "page " << p;
  }
  // Scores + world score form a distribution.
  double total = peer.world_score();
  for (double s : peer.local_scores()) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(JxpPeerTest, ScoreOfGlobalReturnsZeroForForeignPages) {
  const graph::Graph g = SmallGraph();
  JxpPeer peer(0, graph::Subgraph::Induce(g, {0, 1}), g.NumNodes(), TightOptions());
  EXPECT_EQ(peer.ScoreOfGlobal(4), 0.0);
}

TEST(JxpPeerTest, MeetingTransfersInLinkKnowledge) {
  const graph::Graph g = SmallGraph();
  // Peer A holds {0,1,2}; peer B holds {2,3}: page 3 -> 2 is an in-link A
  // can only learn from B.
  JxpPeer a(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), TightOptions());
  JxpPeer b(1, graph::Subgraph::Induce(g, {2, 3}), g.NumNodes(), TightOptions());
  EXPECT_EQ(a.world_node().NumEntries(), 0u);

  const double score_2_before = a.ScoreOfGlobal(2);
  MeetingOutcome outcome = JxpPeer::Meet(a, b);
  EXPECT_GT(outcome.wire_bytes, 0.0);
  EXPECT_GT(outcome.pr_iterations_initiator, 0);

  // A now knows that page 3 (out-degree 1) points at its local page 2.
  ASSERT_EQ(a.world_node().NumEntries(), 1u);
  const ExternalPageInfo* info = a.world_node().Find(3);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->out_degree, 1u);
  ASSERT_EQ(info->targets.size(), 1u);
  EXPECT_EQ(info->targets[0], 2u);
  // The extra in-link raises page 2's score.
  EXPECT_GT(a.ScoreOfGlobal(2), score_2_before);
}

TEST(JxpPeerTest, MeetingsAreSymmetricInKnowledge) {
  const graph::Graph g = SmallGraph();
  JxpPeer a(0, graph::Subgraph::Induce(g, {0, 1}), g.NumNodes(), TightOptions());
  JxpPeer b(1, graph::Subgraph::Induce(g, {2, 3}), g.NumNodes(), TightOptions());
  JxpPeer::Meet(a, b);
  // B learns 0 -> 2 and 1 -> 2 (pages 0 and 1 point into B's page 2).
  EXPECT_NE(b.world_node().Find(0), nullptr);
  EXPECT_NE(b.world_node().Find(1), nullptr);
  // A learns 2 -> 0 (page 2 points into A's page 0).
  EXPECT_NE(a.world_node().Find(2), nullptr);
}

TEST(JxpPeerTest, RepeatedMeetingsReachAFixpoint) {
  // Score improvements across meetings are geometric: after enough rounds
  // the marginal change of one more meeting is negligible.
  const graph::Graph g = SmallGraph();
  JxpPeer a(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), TightOptions());
  JxpPeer b(1, graph::Subgraph::Induce(g, {2, 3, 4}), g.NumNodes(), TightOptions());
  for (int i = 0; i < 120; ++i) JxpPeer::Meet(a, b);
  const std::vector<double> scores_before = a.local_scores();
  JxpPeer::Meet(a, b);
  for (size_t i = 0; i < scores_before.size(); ++i) {
    EXPECT_NEAR(a.local_scores()[i], scores_before[i], 1e-10);
  }
}

TEST(JxpPeerTest, FullMergeAndLightWeightAgreeInTheLimit) {
  Random rng(7);
  const graph::Graph g = graph::BarabasiAlbert(30, 2, rng);
  JxpOptions light = TightOptions();
  light.merge_mode = MergeMode::kLightWeight;
  JxpOptions full = TightOptions();
  full.merge_mode = MergeMode::kFullMerge;

  const std::vector<graph::PageId> frag_a = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14};
  std::vector<graph::PageId> frag_b;
  for (graph::PageId p = 10; p < 30; ++p) frag_b.push_back(p);

  auto run = [&](const JxpOptions& options) {
    JxpPeer a(0, graph::Subgraph::Induce(g, frag_a), g.NumNodes(), options);
    JxpPeer b(1, graph::Subgraph::Induce(g, frag_b), g.NumNodes(), options);
    for (int i = 0; i < 150; ++i) JxpPeer::Meet(a, b);
    return a.ScoreOfGlobal(0);
  };
  EXPECT_NEAR(run(light), run(full), 1e-8);
}

TEST(JxpPeerTest, MessageWireBytesGrowWithWorldKnowledge) {
  const graph::Graph g = SmallGraph();
  JxpPeer a(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), TightOptions());
  JxpPeer b(1, graph::Subgraph::Induce(g, {2, 3}), g.NumNodes(), TightOptions());
  const double before = a.MessageWireBytes();
  JxpPeer::Meet(a, b);
  EXPECT_GT(a.MessageWireBytes(), before);
}

TEST(JxpPeerTest, ReplaceFragmentKeepsKnownScores) {
  const graph::Graph g = SmallGraph();
  // Churn scenario: use the authoritative-refresh extension so transient
  // over-estimates introduced by the re-crawl can heal (see JxpOptions).
  JxpOptions options = TightOptions();
  options.authoritative_refresh = true;
  JxpPeer a(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), options);
  JxpPeer b(1, graph::Subgraph::Induce(g, {2, 3, 4}), g.NumNodes(), options);
  for (int i = 0; i < 10; ++i) JxpPeer::Meet(a, b);
  const double score_0 = a.ScoreOfGlobal(0);
  // Re-crawl: drop page 1, add page 3.
  a.ReplaceFragment(graph::Subgraph::Induce(g, {0, 2, 3}));
  EXPECT_EQ(a.ScoreOfGlobal(1), 0.0);
  EXPECT_GT(a.ScoreOfGlobal(3), 0.0);
  // Page 0's score survives the re-crawl. (A transient over- or
  // under-estimate is possible right after a re-crawl: the world-score
  // monotonicity that Theorem 5.3 relies on is briefly broken. The network
  // self-heals; see the assertion below.)
  EXPECT_NEAR(a.ScoreOfGlobal(0), score_0, 0.06);
  // World knowledge no longer references dropped pages.
  for (const auto& [page, info] : a.world_node().entries()) {
    EXPECT_FALSE(a.fragment().Contains(page));
    for (graph::PageId t : info.targets) {
      EXPECT_TRUE(a.fragment().Contains(t));
    }
  }
  // Self-healing: after further meetings, safety (alpha <= pi) holds again.
  pagerank::PageRankOptions pr_options;
  pr_options.tolerance = 1e-14;
  pr_options.max_iterations = 1000;
  const pagerank::PageRankResult baseline = ComputePageRank(g, pr_options);
  for (int i = 0; i < 60; ++i) JxpPeer::Meet(a, b);
  for (graph::PageId p : {0u, 2u, 3u}) {
    EXPECT_LE(a.ScoreOfGlobal(p), baseline.scores[p] + 1e-6) << "page " << p;
    EXPECT_NEAR(a.ScoreOfGlobal(p), baseline.scores[p], 5e-3) << "page " << p;
  }
}

TEST(JxpPeerTest, ReplaceFragmentIncrementalAgreesWithExactTwin) {
  // Churn with the incremental path on: ReplaceFragment invalidates the
  // push solver, the next run reseeds densely from the carried-over scores,
  // and the published scores must stay within the solver's tolerance bound
  // of an exact-solver twin replaying the identical sequence.
  const graph::Graph g = SmallGraph();
  JxpOptions exact_options = TightOptions();
  JxpOptions incremental_options = TightOptions();
  incremental_options.incremental.enabled = true;
  incremental_options.incremental.tolerance = 1e-12;
  std::vector<JxpPeer> exact;
  std::vector<JxpPeer> incremental;
  exact.emplace_back(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(),
                     exact_options);
  exact.emplace_back(1, graph::Subgraph::Induce(g, {2, 3, 4}), g.NumNodes(),
                     exact_options);
  incremental.emplace_back(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(),
                           incremental_options);
  incremental.emplace_back(1, graph::Subgraph::Induce(g, {2, 3, 4}), g.NumNodes(),
                           incremental_options);
  const auto replay = [&](std::vector<JxpPeer>& peers) {
    for (int i = 0; i < 6; ++i) JxpPeer::Meet(peers[0], peers[1]);
    peers[0].ReplaceFragment(graph::Subgraph::Induce(g, {0, 2, 3}));
    for (int i = 0; i < 6; ++i) JxpPeer::Meet(peers[0], peers[1]);
  };
  replay(exact);
  replay(incremental);
  for (size_t p = 0; p < exact.size(); ++p) {
    for (graph::PageId page = 0; page < g.NumNodes(); ++page) {
      EXPECT_NEAR(incremental[p].ScoreOfGlobal(page), exact[p].ScoreOfGlobal(page),
                  1e-8)
          << "peer " << p << " page " << page;
    }
    EXPECT_NEAR(incremental[p].world_score(), exact[p].world_score(), 1e-8);
  }
  // The churned peer really took the reseed path (fragment invalidation
  // reached the solver) and solved incrementally at least once after it.
  const IncrementalPrStats& stats = incremental[0].incremental_stats();
  EXPECT_GE(stats.reseeds, 2u);  // Initial seed + post-ReplaceFragment.
  EXPECT_GT(stats.incremental_solves, 0u);
}

TEST(JxpPeerTest, IncrementalKnobsInertWhenDisabled) {
  // With incremental.enabled = false every other incremental knob must be
  // dead: the peer runs the full solver and publishes bit-identical scores
  // no matter what the knobs say.
  const graph::Graph g = SmallGraph();
  JxpOptions plain = TightOptions();
  JxpOptions knobbed = TightOptions();
  knobbed.incremental.enabled = false;
  knobbed.incremental.tolerance = 0.5;
  knobbed.incremental.dirty_fallback_fraction = 0.0;
  knobbed.incremental.max_push_factor = 1;
  std::vector<JxpPeer> a;
  std::vector<JxpPeer> b;
  a.emplace_back(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), plain);
  a.emplace_back(1, graph::Subgraph::Induce(g, {2, 3, 4}), g.NumNodes(), plain);
  b.emplace_back(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), knobbed);
  b.emplace_back(1, graph::Subgraph::Induce(g, {2, 3, 4}), g.NumNodes(), knobbed);
  const auto replay = [&](std::vector<JxpPeer>& peers) {
    for (int i = 0; i < 4; ++i) JxpPeer::Meet(peers[0], peers[1]);
    peers[1].ReplaceFragment(graph::Subgraph::Induce(g, {1, 2, 4}));
    for (int i = 0; i < 4; ++i) JxpPeer::Meet(peers[0], peers[1]);
  };
  replay(a);
  replay(b);
  for (size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].local_scores(), b[p].local_scores()) << "peer " << p;
    EXPECT_EQ(a[p].world_score(), b[p].world_score()) << "peer " << p;
    EXPECT_EQ(b[p].incremental_stats().incremental_solves, 0u);
    EXPECT_EQ(b[p].incremental_stats().reseeds, 0u);
  }
}

TEST(JxpPeerTest, TracksMeetingCpuTime) {
  const graph::Graph g = SmallGraph();
  JxpPeer a(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), TightOptions());
  JxpPeer b(1, graph::Subgraph::Induce(g, {2, 3}), g.NumNodes(), TightOptions());
  JxpPeer::Meet(a, b);
  JxpPeer::Meet(b, a);
  EXPECT_EQ(a.num_meetings(), 2u);
  EXPECT_EQ(a.meeting_cpu_millis().size(), 2u);
  EXPECT_GE(a.meeting_cpu_millis()[0], 0.0);
}

}  // namespace
}  // namespace core
}  // namespace jxp
