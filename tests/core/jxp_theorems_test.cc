// Property tests for the paper's Section 5 theorems:
//   Thm 5.1  the world-node score is monotonically non-increasing,
//   Thm 5.2  the sum of local scores is monotonically non-decreasing,
//   Thm 5.3  JXP scores never overestimate the true PageRank
//            (0 < alpha_i <= pi_i, pi_w <= alpha_w < 1),
//   Thm 5.4  fair meeting sequences converge to the true PageRank.
// The guarantees cover the light-weight merge (Section 5.3); convergence is
// additionally checked for the full-merge procedure.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/jxp_peer.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace core {
namespace {

struct TheoremCase {
  uint64_t seed;
  size_t num_nodes;
  size_t num_peers;
  MergeMode merge_mode;
};

void PrintTo(const TheoremCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << " nodes=" << c.num_nodes << " peers=" << c.num_peers
      << " merge=" << (c.merge_mode == MergeMode::kLightWeight ? "light" : "full");
}

/// Overlapping random fragments that jointly cover the graph: every page
/// goes to one random peer, then each page is replicated onto further peers
/// with probability 1/2 per extra copy (up to 2 extras).
std::vector<std::vector<graph::PageId>> RandomOverlappingFragments(size_t num_nodes,
                                                                   size_t num_peers,
                                                                   Random& rng) {
  std::vector<std::vector<graph::PageId>> fragments(num_peers);
  for (graph::PageId p = 0; p < num_nodes; ++p) {
    fragments[rng.NextBounded(num_peers)].push_back(p);
    for (int extra = 0; extra < 2; ++extra) {
      if (rng.NextBool(0.5)) fragments[rng.NextBounded(num_peers)].push_back(p);
    }
  }
  for (auto& fragment : fragments) {
    if (fragment.empty()) fragment.push_back(static_cast<graph::PageId>(
        rng.NextBounded(num_nodes)));
  }
  return fragments;
}

class JxpTheoremsTest : public ::testing::TestWithParam<TheoremCase> {};

TEST_P(JxpTheoremsTest, SafetyAndLiveness) {
  const TheoremCase& param = GetParam();
  Random rng(param.seed);
  const graph::Graph g = graph::BarabasiAlbert(param.num_nodes, 3, rng);

  JxpOptions options;
  options.damping = 0.85;
  options.pr_tolerance = 1e-14;
  options.pr_max_iterations = 1000;
  options.merge_mode = param.merge_mode;
  options.combine_mode = CombineMode::kTakeMax;

  pagerank::PageRankOptions pr_options;
  pr_options.damping = options.damping;
  pr_options.tolerance = 1e-14;
  pr_options.max_iterations = 1000;
  const pagerank::PageRankResult baseline = ComputePageRank(g, pr_options);
  ASSERT_TRUE(baseline.converged);

  const auto fragments =
      RandomOverlappingFragments(param.num_nodes, param.num_peers, rng);
  std::vector<JxpPeer> peers;
  peers.reserve(param.num_peers);
  for (size_t p = 0; p < param.num_peers; ++p) {
    peers.emplace_back(static_cast<p2p::PeerId>(p),
                       graph::Subgraph::Induce(g, fragments[p]), g.NumNodes(), options);
  }

  // True world score per peer: pi_w = 1 - sum of pi over the local pages.
  std::vector<double> true_world(param.num_peers);
  for (size_t p = 0; p < param.num_peers; ++p) {
    double local = 0;
    for (graph::PageId page : peers[p].fragment().Pages()) {
      local += baseline.scores[page];
    }
    true_world[p] = 1.0 - local;
  }

  const bool check_monotonicity = param.merge_mode == MergeMode::kLightWeight;
  constexpr double kMonotoneSlack = 1e-9;
  constexpr double kUpperBoundSlack = 1e-9;

  std::vector<double> prev_world(param.num_peers);
  for (size_t p = 0; p < param.num_peers; ++p) prev_world[p] = peers[p].world_score();

  const size_t total_meetings = 150 * param.num_peers;
  for (size_t m = 0; m < total_meetings; ++m) {
    const size_t a = rng.NextBounded(param.num_peers);
    size_t b = rng.NextBounded(param.num_peers - 1);
    if (b >= a) ++b;
    JxpPeer::Meet(peers[a], peers[b]);

    for (size_t p : {a, b}) {
      // Theorem 5.1 / 5.2 (light-weight only).
      if (check_monotonicity) {
        EXPECT_LE(peers[p].world_score(), prev_world[p] + kMonotoneSlack)
            << "world score rose at meeting " << m << " peer " << p;
      }
      prev_world[p] = peers[p].world_score();
      // Theorem 5.3: safety.
      EXPECT_GE(peers[p].world_score(), true_world[p] - kUpperBoundSlack)
          << "world score fell below pi_w at meeting " << m << " peer " << p;
      EXPECT_LT(peers[p].world_score(), 1.0);
      const graph::Subgraph& fragment = peers[p].fragment();
      for (graph::Subgraph::LocalIndex i = 0; i < fragment.NumLocalPages(); ++i) {
        const double alpha = peers[p].local_scores()[i];
        const double pi = baseline.scores[fragment.GlobalId(i)];
        EXPECT_GT(alpha, 0.0);
        EXPECT_LE(alpha, pi + kUpperBoundSlack)
            << "page " << fragment.GlobalId(i) << " overestimated at meeting " << m;
      }
    }
  }

  // Theorem 5.4: after a fair random meeting sequence the scores are close
  // to the global PageRank everywhere.
  double worst = 0;
  for (const JxpPeer& peer : peers) {
    const graph::Subgraph& fragment = peer.fragment();
    for (graph::Subgraph::LocalIndex i = 0; i < fragment.NumLocalPages(); ++i) {
      worst = std::max(worst, std::abs(peer.local_scores()[i] -
                                       baseline.scores[fragment.GlobalId(i)]));
    }
  }
  EXPECT_LT(worst, 1e-5) << "JXP scores did not converge to global PR";
  for (size_t p = 0; p < param.num_peers; ++p) {
    EXPECT_NEAR(peers[p].world_score(), true_world[p], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JxpTheoremsTest,
    ::testing::Values(TheoremCase{11, 40, 3, MergeMode::kLightWeight},
                      TheoremCase{12, 60, 4, MergeMode::kLightWeight},
                      TheoremCase{13, 80, 5, MergeMode::kLightWeight},
                      TheoremCase{14, 60, 4, MergeMode::kFullMerge},
                      TheoremCase{15, 40, 6, MergeMode::kLightWeight},
                      TheoremCase{16, 100, 4, MergeMode::kFullMerge}));

}  // namespace
}  // namespace core
}  // namespace jxp
