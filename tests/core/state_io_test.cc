#include "core/state_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "common/hash.h"

namespace jxp {
namespace core {
namespace {

class StateIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/peer_state_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".jxp";
    Random rng(17);
    graph_ = graph::BarabasiAlbert(200, 3, rng);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  JxpPeer MakeWarmPeer() {
    std::vector<graph::PageId> pages_a;
    std::vector<graph::PageId> pages_b;
    for (graph::PageId p = 0; p < 200; ++p) {
      (p % 3 == 0 ? pages_a : pages_b).push_back(p);
    }
    JxpOptions options;
    JxpPeer a(0, graph::Subgraph::Induce(graph_, pages_a), 200, options);
    JxpPeer b(1, graph::Subgraph::Induce(graph_, pages_b), 200, options);
    for (int i = 0; i < 8; ++i) JxpPeer::Meet(a, b);
    return a;
  }

  std::string path_;
  graph::Graph graph_;
};

TEST_F(StateIoTest, RoundTripPreservesEverything) {
  const JxpPeer original = MakeWarmPeer();
  ASSERT_TRUE(SavePeerState(original, path_).ok());
  auto loaded = LoadPeerState(path_, original.options());
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->id(), original.id());
  EXPECT_EQ(loaded->global_size(), original.global_size());
  EXPECT_DOUBLE_EQ(loaded->world_score(), original.world_score());
  ASSERT_EQ(loaded->fragment().NumLocalPages(), original.fragment().NumLocalPages());
  for (graph::Subgraph::LocalIndex i = 0; i < original.fragment().NumLocalPages(); ++i) {
    EXPECT_EQ(loaded->fragment().GlobalId(i), original.fragment().GlobalId(i));
    EXPECT_DOUBLE_EQ(loaded->local_scores()[i], original.local_scores()[i]);
    EXPECT_EQ(loaded->fragment().GlobalOutDegree(i),
              original.fragment().GlobalOutDegree(i));
  }
  ASSERT_EQ(loaded->world_node().NumEntries(), original.world_node().NumEntries());
  for (const auto& [page, info] : original.world_node().entries()) {
    const ExternalPageInfo* restored = loaded->world_node().Find(page);
    ASSERT_NE(restored, nullptr) << "page " << page;
    EXPECT_EQ(restored->out_degree, info.out_degree);
    EXPECT_DOUBLE_EQ(restored->score, info.score);
    EXPECT_EQ(restored->targets, info.targets);
  }
  EXPECT_DOUBLE_EQ(loaded->world_node().TotalDanglingScore(),
                   original.world_node().TotalDanglingScore());
}

TEST_F(StateIoTest, RestoredPeerResumesMeetings) {
  JxpPeer original = MakeWarmPeer();
  ASSERT_TRUE(SavePeerState(original, path_).ok());
  auto loaded = LoadPeerState(path_, original.options());
  ASSERT_TRUE(loaded.ok());

  // Both the original and the restored copy meet the same fresh partner;
  // their resulting scores must be identical.
  std::vector<graph::PageId> partner_pages;
  for (graph::PageId p = 0; p < 200; p += 2) partner_pages.push_back(p);
  JxpOptions options;
  JxpPeer partner1(7, graph::Subgraph::Induce(graph_, partner_pages), 200, options);
  JxpPeer partner2(8, graph::Subgraph::Induce(graph_, partner_pages), 200, options);
  JxpPeer::Meet(original, partner1);
  JxpPeer::Meet(*loaded, partner2);
  for (graph::Subgraph::LocalIndex i = 0; i < original.fragment().NumLocalPages(); ++i) {
    EXPECT_NEAR(loaded->local_scores()[i], original.local_scores()[i], 1e-14);
  }
}

TEST_F(StateIoTest, DetectsBitFlips) {
  const JxpPeer original = MakeWarmPeer();
  ASSERT_TRUE(SavePeerState(original, path_).ok());
  // Flip one character in the middle of the file.
  std::string content;
  {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    content = ss.str();
  }
  content[content.size() / 2] = content[content.size() / 2] == '1' ? '2' : '1';
  {
    std::ofstream out(path_, std::ios::trunc);
    out << content;
  }
  auto loaded = LoadPeerState(path_, original.options());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(StateIoTest, DetectsTruncation) {
  const JxpPeer original = MakeWarmPeer();
  ASSERT_TRUE(SavePeerState(original, path_).ok());
  std::string content;
  {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    content = ss.str();
  }
  {
    std::ofstream out(path_, std::ios::trunc);
    out << content.substr(0, content.size() / 3);
  }
  auto loaded = LoadPeerState(path_, original.options());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(StateIoTest, MissingFileIsIOError) {
  auto loaded = LoadPeerState(path_ + ".absent", JxpOptions());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(StateIoTest, RejectsWrongMagic) {
  {
    std::ofstream out(path_);
    const std::string body = "NOTJXP v9\n";
    out << body << "checksum " << HashString(body) << "\n";
  }
  auto loaded = LoadPeerState(path_, JxpOptions());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace core
}  // namespace jxp
