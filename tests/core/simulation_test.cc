#include "core/simulation.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "crawler/partitioner.h"
#include "graph/generators.h"

namespace jxp {
namespace core {
namespace {

/// Small categorized web graph + crawl-based fragments, the paper's setup in
/// miniature.
struct SimFixture {
  SimFixture() {
    Random rng(77);
    graph::WebGraphParams params;
    params.num_nodes = 400;
    params.num_categories = 4;
    params.mean_out_degree = 5;
    collection = GenerateWebGraph(params, rng);
    crawler::PartitionOptions partition;
    partition.peers_per_category = 2;
    partition.crawler.max_pages = 90;
    fragments = CrawlBasedPartition(collection, partition, rng);
  }

  graph::CategorizedGraph collection;
  std::vector<std::vector<graph::PageId>> fragments;
};

TEST(JxpSimulationTest, ErrorDecreasesWithMeetings) {
  SimFixture fx;
  SimulationConfig config;
  config.seed = 5;
  config.eval_top_k = 50;
  JxpSimulation sim(fx.collection.graph, fx.fragments, config);

  const AccuracyPoint initial = sim.Evaluate();
  sim.RunMeetings(200);
  const AccuracyPoint later = sim.Evaluate();
  EXPECT_EQ(sim.meetings_done(), 200u);
  EXPECT_LT(later.linear_error, initial.linear_error);
  sim.RunMeetings(600);
  const AccuracyPoint final_point = sim.Evaluate();
  EXPECT_LT(final_point.footrule, 0.1);
  EXPECT_LT(final_point.linear_error, initial.linear_error / 4);
}

TEST(JxpSimulationTest, DeterministicInSeed) {
  SimFixture fx;
  SimulationConfig config;
  config.seed = 9;
  config.eval_top_k = 30;
  JxpSimulation a(fx.collection.graph, fx.fragments, config);
  JxpSimulation b(fx.collection.graph, fx.fragments, config);
  a.RunMeetings(50);
  b.RunMeetings(50);
  EXPECT_DOUBLE_EQ(a.Evaluate().linear_error, b.Evaluate().linear_error);
  EXPECT_DOUBLE_EQ(a.network().TotalTrafficBytes(), b.network().TotalTrafficBytes());
}

TEST(JxpSimulationTest, RecordsTrafficForBothParticipants) {
  SimFixture fx;
  SimulationConfig config;
  config.seed = 3;
  JxpSimulation sim(fx.collection.graph, fx.fragments, config);
  sim.RunMeetings(20);
  size_t meetings_recorded = 0;
  for (p2p::PeerId p = 0; p < sim.network().NumPeers(); ++p) {
    meetings_recorded += sim.network().TrafficOf(p).bytes_per_meeting.size();
  }
  EXPECT_EQ(meetings_recorded, 40u);  // Two participants per meeting.
  EXPECT_GT(sim.network().TotalTrafficBytes(), 0.0);
}

TEST(JxpSimulationTest, PreMeetingStrategyRuns) {
  SimFixture fx;
  SimulationConfig config;
  config.seed = 13;
  config.strategy = SelectionStrategy::kPreMeetings;
  config.eval_top_k = 50;
  JxpSimulation sim(fx.collection.graph, fx.fragments, config);
  sim.RunMeetings(400);
  EXPECT_LT(sim.Evaluate().footrule, 0.3);
}

TEST(JxpSimulationTest, GlobalSizeEstimateOverride) {
  SimFixture fx;
  SimulationConfig config;
  config.seed = 5;
  config.global_size_estimate = 800;  // 2x the truth.
  JxpSimulation sim(fx.collection.graph, fx.fragments, config);
  EXPECT_EQ(sim.peers()[0].global_size(), 800u);
  sim.RunMeetings(100);  // Still runs and improves.
  EXPECT_GT(sim.Evaluate().footrule, 0.0);
}

TEST(JxpSimulationTest, SurvivesChurn) {
  SimFixture fx;
  SimulationConfig config;
  config.seed = 21;
  config.eval_top_k = 50;
  config.churn.leave_probability = 0.02;
  config.churn.join_probability = 0.05;
  config.churn.min_alive = 3;
  JxpSimulation sim(fx.collection.graph, fx.fragments, config);
  sim.RunMeetings(500);
  // The run completes and the (alive-peer) snapshot is still a reasonable
  // approximation.
  EXPECT_LT(sim.Evaluate().footrule, 0.4);
}

TEST(JxpSimulationTest, ForceLeaveExcludesPeerFromEvaluation) {
  SimFixture fx;
  SimulationConfig config;
  config.seed = 2;
  JxpSimulation sim(fx.collection.graph, fx.fragments, config);
  const size_t all = sim.GlobalJxpScores().size();
  sim.ForceLeave(0);
  const size_t without = sim.GlobalJxpScores().size();
  EXPECT_LE(without, all);
  sim.ForceRejoin(0);
  EXPECT_EQ(sim.GlobalJxpScores().size(), all);
}

TEST(JxpSimulationTest, ReplaceFragmentIntegration) {
  SimFixture fx;
  SimulationConfig config;
  config.seed = 31;
  config.strategy = SelectionStrategy::kPreMeetings;
  config.jxp.authoritative_refresh = true;
  JxpSimulation sim(fx.collection.graph, fx.fragments, config);
  sim.RunMeetings(100);
  // Peer 0 re-crawls: new random fragment.
  std::vector<graph::PageId> pages;
  for (graph::PageId p = 0; p < 120; ++p) pages.push_back(p);
  sim.ReplaceFragment(0, pages);
  EXPECT_EQ(sim.peers()[0].fragment().NumLocalPages(), 120u);
  sim.RunMeetings(100);  // Keeps running after the change.
  EXPECT_GT(sim.meetings_done(), 0u);
}

}  // namespace
}  // namespace core
}  // namespace jxp
