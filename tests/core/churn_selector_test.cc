// Churn/selector consistency: a PeerSelector must never propose a departed
// peer, no matter how its internal cache and candidate lists age across
// departures and rejoins. The PreMeetingSelector keeps per-peer state
// (cached ids, measured candidates) that can reference peers long gone —
// these tests hammer exactly that staleness.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/peer_selection.h"
#include "core/simulation.h"
#include "graph/generators.h"
#include "graph/subgraph.h"

namespace jxp {
namespace core {
namespace {

std::vector<JxpPeer> MakePeers(const graph::Graph& graph, size_t num_peers,
                               const JxpOptions& options) {
  std::vector<std::vector<graph::PageId>> fragments(num_peers);
  for (graph::PageId p = 0; p < graph.NumNodes(); ++p) {
    fragments[p % num_peers].push_back(p);
    if (p % 4 == 0) fragments[(p + 1) % num_peers].push_back(p);
  }
  std::vector<JxpPeer> peers;
  peers.reserve(num_peers);
  for (size_t p = 0; p < num_peers; ++p) {
    peers.emplace_back(static_cast<p2p::PeerId>(p),
                       graph::Subgraph::Induce(graph, fragments[p]),
                       graph.NumNodes(), options);
  }
  return peers;
}

TEST(ChurnSelectorTest, CachedAndCandidatePeersAreFilteredWhenDeparted) {
  Random rng(5);
  const graph::Graph graph = graph::BarabasiAlbert(80, 3, rng);
  JxpOptions options;
  std::vector<JxpPeer> peers = MakePeers(graph, 4, options);

  PreMeetingSelector::Options selector_options;
  // Cache every met peer and always exchange cache lists, so the selector's
  // memory fills with ids regardless of fragment statistics.
  selector_options.containment_threshold = -1.0;
  selector_options.overlap_threshold = -1.0;
  selector_options.revisit_probability = 1.0;  // Always try the cache first.
  selector_options.random_every_k = 0;         // No forced-random picks.
  PreMeetingSelector selector(selector_options, &peers);

  p2p::Network network;
  for (size_t p = 0; p < peers.size(); ++p) network.AddPeer();

  // Peer 0 meets everyone: its cache now holds 1, 2, 3.
  for (p2p::PeerId partner = 1; partner < 4; ++partner) {
    JxpPeer::Meet(peers[0], peers[partner]);
    selector.AfterMeeting(0, partner, network);
  }

  // Depart the two most recently cached peers — the ones the revisit loop
  // prefers — and select repeatedly: only the remaining alive peer may come
  // back, from the cache or the random fallback.
  network.Leave(2);
  network.Leave(3);
  for (int i = 0; i < 50; ++i) {
    const SelectionResult result = selector.SelectPartner(0, network, rng);
    ASSERT_NE(result.partner, p2p::kInvalidPeer);
    EXPECT_EQ(result.partner, 1u) << "proposed a departed peer";
    EXPECT_TRUE(network.IsAlive(result.partner));
  }

  // A departed peer that rejoins is proposable again.
  network.Rejoin(3);
  bool saw_rejoined = false;
  for (int i = 0; i < 50 && !saw_rejoined; ++i) {
    saw_rejoined = selector.SelectPartner(0, network, rng).partner == 3;
  }
  EXPECT_TRUE(saw_rejoined) << "rejoined peer never proposed again";
}

TEST(ChurnSelectorTest, SelectorNeverProposesDepartedPeerUnderHeavyChurn) {
  Random rng(11);
  const graph::Graph graph = graph::BarabasiAlbert(120, 3, rng);
  JxpOptions options;
  std::vector<JxpPeer> peers = MakePeers(graph, 8, options);

  PreMeetingSelector::Options selector_options;
  selector_options.containment_threshold = 0.01;
  selector_options.overlap_threshold = 0.05;
  selector_options.random_every_k = 3;
  PreMeetingSelector selector(selector_options, &peers);

  p2p::Network network;
  for (size_t p = 0; p < peers.size(); ++p) network.AddPeer();

  // Interleave meetings (which populate caches/candidates) with aggressive
  // membership changes; every single proposal must be alive and distinct.
  for (int step = 0; step < 600; ++step) {
    if (network.NumAlive() > 3 && rng.NextBool(0.3)) {
      network.Leave(network.RandomAlivePeer(rng, p2p::kInvalidPeer));
    }
    if (network.NumAlive() < network.NumPeers() && rng.NextBool(0.3)) {
      std::vector<p2p::PeerId> departed;
      for (p2p::PeerId p = 0; p < network.NumPeers(); ++p) {
        if (!network.IsAlive(p)) departed.push_back(p);
      }
      network.Rejoin(departed[rng.NextBounded(departed.size())]);
    }
    const p2p::PeerId initiator = network.RandomAlivePeer(rng, p2p::kInvalidPeer);
    const SelectionResult result = selector.SelectPartner(initiator, network, rng);
    ASSERT_NE(result.partner, p2p::kInvalidPeer) << "step " << step;
    ASSERT_NE(result.partner, initiator) << "step " << step;
    ASSERT_TRUE(network.IsAlive(result.partner))
        << "step " << step << ": departed peer " << result.partner << " proposed";
    JxpPeer::Meet(peers[initiator], peers[result.partner]);
    selector.AfterMeeting(initiator, result.partner, network);
  }
}

TEST(ChurnSelectorTest, SimulationWithChurnAndPreMeetingsCompletes) {
  // End-to-end regression: the simulation's own invariant (JXP_CHECK on
  // every proposal) runs under churn with the pre-meetings strategy, in
  // both the sequential and the parallel driver.
  Random rng(23);
  const graph::Graph graph = graph::BarabasiAlbert(150, 3, rng);
  std::vector<std::vector<graph::PageId>> fragments(10);
  for (graph::PageId p = 0; p < 150; ++p) fragments[p % 10].push_back(p);

  SimulationConfig config;
  config.strategy = SelectionStrategy::kPreMeetings;
  config.pre_meeting.containment_threshold = 0.01;
  config.pre_meeting.overlap_threshold = 0.05;
  config.churn.leave_probability = 0.3;
  config.churn.join_probability = 0.3;
  config.churn.min_alive = 4;
  config.seed = 7;
  config.num_threads = 4;
  JxpSimulation sim(graph, std::move(fragments), config);

  sim.RunMeetings(300);
  sim.RunMeetingsParallel(200);
  EXPECT_EQ(sim.meetings_done(), 500u);
  for (const JxpPeer& peer : sim.peers()) {
    EXPECT_GT(peer.world_score(), 0.0);
    EXPECT_LT(peer.world_score(), 1.0);
  }
}

}  // namespace
}  // namespace core
}  // namespace jxp
