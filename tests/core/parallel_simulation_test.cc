#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/simulation.h"
#include "crawler/partitioner.h"
#include "graph/generators.h"

namespace jxp {
namespace core {
namespace {

/// Same miniature setup as simulation_test.cc: categorized web graph,
/// crawl-based fragments.
struct ParallelFixture {
  ParallelFixture() {
    Random rng(77);
    graph::WebGraphParams params;
    params.num_nodes = 400;
    params.num_categories = 4;
    params.mean_out_degree = 5;
    collection = GenerateWebGraph(params, rng);
    crawler::PartitionOptions partition;
    partition.peers_per_category = 2;
    partition.crawler.max_pages = 90;
    fragments = CrawlBasedPartition(collection, partition, rng);
  }

  std::unique_ptr<JxpSimulation> MakeSim(size_t num_threads, uint64_t seed = 5) {
    SimulationConfig config;
    config.seed = seed;
    config.eval_top_k = 50;
    config.num_threads = num_threads;
    return std::make_unique<JxpSimulation>(collection.graph, fragments, config);
  }

  graph::CategorizedGraph collection;
  std::vector<std::vector<graph::PageId>> fragments;
};

/// The ISSUE's headline guarantee: the parallel meeting engine is a pure
/// function of the seed — per-peer score vectors, world scores, meeting
/// counts, and traffic are bitwise identical at every thread count.
TEST(ParallelSimulationTest, BitIdenticalAcrossThreadCounts) {
  ParallelFixture fx;
  auto base = fx.MakeSim(1);
  base->RunMeetingsParallel(150);
  for (const size_t threads : {2u, 8u}) {
    auto sim = fx.MakeSim(threads);
    sim->RunMeetingsParallel(150);
    ASSERT_EQ(sim->meetings_done(), base->meetings_done());
    ASSERT_EQ(sim->peers().size(), base->peers().size());
    for (size_t p = 0; p < base->peers().size(); ++p) {
      const JxpPeer& a = base->peers()[p];
      const JxpPeer& b = sim->peers()[p];
      EXPECT_EQ(a.num_meetings(), b.num_meetings()) << "peer " << p;
      EXPECT_EQ(a.world_score(), b.world_score()) << "peer " << p;
      EXPECT_EQ(a.local_scores(), b.local_scores()) << "peer " << p;
      EXPECT_EQ(a.world_score_history(), b.world_score_history()) << "peer " << p;
    }
    EXPECT_EQ(sim->network().TotalTrafficBytes(), base->network().TotalTrafficBytes());
  }
}

TEST(ParallelSimulationTest, ErrorDecreasesWithParallelMeetings) {
  ParallelFixture fx;
  auto sim = fx.MakeSim(4);
  const AccuracyPoint initial = sim->Evaluate();
  sim->RunMeetingsParallel(600);
  EXPECT_EQ(sim->meetings_done(), 600u);
  const AccuracyPoint later = sim->Evaluate();
  EXPECT_LT(later.linear_error, initial.linear_error / 4);
  EXPECT_LT(later.footrule, 0.15);
}

TEST(ParallelSimulationTest, RecordsTrafficForBothParticipants) {
  ParallelFixture fx;
  auto sim = fx.MakeSim(4);
  sim->RunMeetingsParallel(20);
  size_t meetings_recorded = 0;
  for (p2p::PeerId p = 0; p < sim->network().NumPeers(); ++p) {
    meetings_recorded += sim->network().TrafficOf(p).bytes_per_meeting.size();
  }
  EXPECT_EQ(meetings_recorded, 40u);
  EXPECT_GT(sim->network().TotalTrafficBytes(), 0.0);
}

TEST(ParallelSimulationTest, MixesWithSequentialRuns) {
  ParallelFixture fx;
  auto sim = fx.MakeSim(2);
  sim->RunMeetings(30);
  sim->RunMeetingsParallel(70);
  sim->RunMeetings(10);
  EXPECT_EQ(sim->meetings_done(), 110u);
}

TEST(ParallelSimulationTest, PreMeetingSelectorIsDeterministicToo) {
  ParallelFixture fx;
  SimulationConfig config;
  config.seed = 13;
  config.eval_top_k = 50;
  config.strategy = SelectionStrategy::kPreMeetings;
  auto run = [&](size_t threads) {
    config.num_threads = threads;
    JxpSimulation sim(fx.collection.graph, fx.fragments, config);
    sim.RunMeetingsParallel(120);
    std::vector<double> scores;
    for (const JxpPeer& peer : sim.peers()) scores.push_back(peer.world_score());
    return scores;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ParallelSimulationTest, SurvivesChurnDeterministically) {
  ParallelFixture fx;
  SimulationConfig config;
  config.seed = 21;
  config.eval_top_k = 50;
  config.churn.leave_probability = 0.02;
  config.churn.join_probability = 0.05;
  config.churn.min_alive = 3;
  auto run = [&](size_t threads) {
    config.num_threads = threads;
    JxpSimulation sim(fx.collection.graph, fx.fragments, config);
    sim.RunMeetingsParallel(200);
    return sim.network().TotalTrafficBytes();
  };
  const double once = run(1);
  EXPECT_GT(once, 0.0);
  EXPECT_EQ(once, run(4));
}

TEST(ParallelSimulationTest, ParallelBaselineMatchesAccuracyShape) {
  // baseline_num_threads only affects the centralized reference computation;
  // the parallel pull kernel converges to the same fixpoint, so evaluation
  // results stay numerically indistinguishable.
  ParallelFixture fx;
  SimulationConfig config;
  config.seed = 5;
  config.eval_top_k = 50;
  JxpSimulation seq(fx.collection.graph, fx.fragments, config);
  config.baseline_num_threads = 4;
  JxpSimulation par(fx.collection.graph, fx.fragments, config);
  ASSERT_EQ(seq.global_scores().size(), par.global_scores().size());
  for (size_t i = 0; i < seq.global_scores().size(); ++i) {
    ASSERT_NEAR(seq.global_scores()[i], par.global_scores()[i], 1e-10) << "page " << i;
  }
  EXPECT_NEAR(seq.Evaluate().footrule, par.Evaluate().footrule, 1e-6);
}

}  // namespace
}  // namespace core
}  // namespace jxp
