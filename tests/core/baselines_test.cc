#include "core/baselines.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/evaluation.h"
#include "graph/generators.h"
#include "metrics/ranking.h"

namespace jxp {
namespace core {
namespace {

struct BaselineFixture {
  BaselineFixture() {
    Random rng(31);
    graph::WebGraphParams params;
    params.num_nodes = 600;
    params.num_categories = 4;
    collection = GenerateWebGraph(params, rng);
    // Disjoint sites: one per category.
    site_of.resize(collection.graph.NumNodes());
    for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
      site_of[p] = collection.category[p];
    }
    truth = ComputePageRank(collection.graph, pagerank::PageRankOptions());
  }

  AccuracyPoint Evaluate(const std::vector<double>& approx, size_t k = 100) const {
    std::unordered_map<uint32_t, double> map;
    for (uint32_t p = 0; p < approx.size(); ++p) map[p] = approx[p];
    const auto top = metrics::TopK(std::span<const double>(truth.scores), k);
    return EvaluateAccuracy(map, top);
  }

  graph::CategorizedGraph collection;
  std::vector<uint32_t> site_of;
  pagerank::PageRankResult truth;
};

TEST(BaselinesTest, ScoresAreDistributions) {
  BaselineFixture fx;
  for (const auto& scores :
       {ServerRankScores(fx.collection.graph, fx.site_of, 4, pagerank::PageRankOptions()),
        LocalOnlyScores(fx.collection.graph, fx.site_of, 4, pagerank::PageRankOptions())}) {
    ASSERT_EQ(scores.size(), fx.collection.graph.NumNodes());
    double sum = 0;
    for (double s : scores) {
      EXPECT_GE(s, 0.0);
      sum += s;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(BaselinesTest, ServerRankBeatsLocalOnlyWhenSiteAuthorityDiffers) {
  // Two equally sized sites, but every site-1 page endorses site 0's hub:
  // site 0 carries far more true authority. LocalOnly weights the sites
  // only by size and misses this; ServerRank's site-level ranking captures
  // it.
  graph::GraphBuilder builder(40);
  for (graph::PageId p = 0; p < 20; ++p) builder.AddEdge(p, (p + 1) % 20);
  for (graph::PageId p = 20; p < 40; ++p) {
    builder.AddEdge(p, p == 39 ? 20 : p + 1);
    builder.AddEdge(p, 0);  // Inter-site endorsement of site 0's hub.
  }
  const graph::Graph g = builder.Build();
  std::vector<uint32_t> site_of(40, 0);
  for (graph::PageId p = 20; p < 40; ++p) site_of[p] = 1;

  pagerank::PageRankOptions options;
  options.tolerance = 1e-13;
  const auto truth = ComputePageRank(g, options);
  const auto serverrank = ServerRankScores(g, site_of, 2, options);
  const auto local = LocalOnlyScores(g, site_of, 2, options);

  auto mean_error = [&](const std::vector<double>& approx) {
    double err = 0;
    for (graph::PageId p = 0; p < 40; ++p) err += std::abs(approx[p] - truth.scores[p]);
    return err / 40;
  };
  EXPECT_LT(mean_error(serverrank), mean_error(local));
}

TEST(BaselinesTest, ServerRankApproximatesButDoesNotMatchTruth) {
  BaselineFixture fx;
  const auto serverrank =
      ServerRankScores(fx.collection.graph, fx.site_of, 4, pagerank::PageRankOptions());
  const AccuracyPoint accuracy = fx.Evaluate(serverrank);
  // Better than random (footrule well below 1) ...
  EXPECT_LT(accuracy.footrule, 0.8);
  // ... but visibly imperfect: the block approximation has inherent error,
  // which is the gap JXP closes.
  EXPECT_GT(accuracy.footrule, 1e-4);
}

TEST(BaselinesTest, SingleSiteServerRankIsExact) {
  BaselineFixture fx;
  const std::vector<uint32_t> one_site(fx.collection.graph.NumNodes(), 0);
  pagerank::PageRankOptions options;
  options.tolerance = 1e-14;
  const auto scores = ServerRankScores(fx.collection.graph, one_site, 1, options);
  for (graph::PageId p = 0; p < fx.collection.graph.NumNodes(); p += 37) {
    EXPECT_NEAR(scores[p], fx.truth.scores[p], 1e-8) << "page " << p;
  }
}

}  // namespace
}  // namespace core
}  // namespace jxp
