// Structural-corruption matrix for LoadPeerState: every Corruption branch
// of the loader is hit by a targeted mutation of a valid state file. All
// body mutations recompute the trailing FNV-1a checksum, so each case
// reaches the structural check it aims at (not the checksum guard).

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "core/state_io.h"
#include "graph/generators.h"
#include "graph/subgraph.h"

namespace jxp {
namespace core {
namespace {

class StateIoCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "corrupt_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".jxp";
    Random rng(17);
    graph_ = graph::BarabasiAlbert(120, 3, rng);

    std::vector<graph::PageId> pages_a;
    std::vector<graph::PageId> pages_b;
    for (graph::PageId p = 0; p < 120; ++p) {
      (p % 3 == 0 ? pages_a : pages_b).push_back(p);
    }
    JxpPeer a(0, graph::Subgraph::Induce(graph_, pages_a), 120, options_);
    JxpPeer b(1, graph::Subgraph::Induce(graph_, pages_b), 120, options_);
    for (int i = 0; i < 8; ++i) JxpPeer::Meet(a, b);
    ASSERT_TRUE(SavePeerState(a, path_).ok());

    std::ifstream in(path_);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    const size_t checksum_pos = content.rfind("checksum ");
    ASSERT_NE(checksum_pos, std::string::npos);
    body_ = content.substr(0, checksum_pos);

    std::string line;
    std::istringstream split(body_);
    while (std::getline(split, line)) lines_.push_back(line);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  size_t FindLine(const std::string& prefix) const {
    for (size_t i = 0; i < lines_.size(); ++i) {
      if (lines_[i].rfind(prefix, 0) == 0) return i;
    }
    ADD_FAILURE() << "no line starts with '" << prefix << "'";
    return 0;
  }

  size_t CountAfter(const std::string& prefix) const {
    const std::string& line = lines_[FindLine(prefix)];
    return std::stoul(line.substr(prefix.size()));
  }

  /// Writes `lines` (joined) plus a *recomputed* checksum.
  void WriteBody(const std::vector<std::string>& lines) const {
    std::string body;
    for (const std::string& line : lines) body += line + "\n";
    std::ofstream out(path_, std::ios::trunc);
    out << body << "checksum " << HashString(body) << "\n";
  }

  /// Writes raw content with no checksum recomputation.
  void WriteRaw(const std::string& content) const {
    std::ofstream out(path_, std::ios::trunc);
    out << content;
  }

  void ExpectCorruption(const std::string& message_part) const {
    auto loaded = LoadPeerState(path_, options_);
    ASSERT_FALSE(loaded.ok()) << "loader accepted a file corrupted for: "
                              << message_part;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
    EXPECT_NE(loaded.status().message().find(message_part), std::string::npos)
        << "got: " << loaded.status().message();
  }

  /// Applies `mutate` to a copy of the valid lines and writes the result.
  void Mutate(const std::function<void(std::vector<std::string>&)>& mutate) const {
    std::vector<std::string> lines = lines_;
    mutate(lines);
    WriteBody(lines);
  }

  JxpOptions options_;
  graph::Graph graph_;
  std::string path_;
  std::string body_;
  std::vector<std::string> lines_;
};

TEST_F(StateIoCorruptionTest, ValidRewriteStillLoads) {
  // Control: the mutation harness itself (re-join + re-checksum) must not
  // break a valid file.
  Mutate([](std::vector<std::string>&) {});
  auto loaded = LoadPeerState(path_, options_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
}

TEST_F(StateIoCorruptionTest, MissingChecksum) {
  WriteRaw(body_);
  ExpectCorruption("missing checksum");
}

TEST_F(StateIoCorruptionTest, ChecksumAsFirstLine) {
  // rfind finds position 0; a file that *is* only a checksum line has no body.
  WriteRaw("checksum 12345\n");
  ExpectCorruption("missing checksum");
}

TEST_F(StateIoCorruptionTest, MalformedChecksumLine) {
  WriteRaw(body_ + "checksum notanumber\n");
  ExpectCorruption("malformed checksum line");
}

TEST_F(StateIoCorruptionTest, ChecksumMismatch) {
  WriteRaw(body_ + "checksum " + std::to_string(HashString(body_) + 1) + "\n");
  ExpectCorruption("checksum mismatch");
}

TEST_F(StateIoCorruptionTest, BadMagic) {
  Mutate([](std::vector<std::string>& lines) { lines[0] = "JXPSTATE v2"; });
  ExpectCorruption("bad magic");
}

TEST_F(StateIoCorruptionTest, BadPeerLine) {
  Mutate([this](std::vector<std::string>& lines) {
    lines[FindLine("peer ")] = "peer zero";
  });
  ExpectCorruption("bad peer line");
}

TEST_F(StateIoCorruptionTest, BadGlobalSizeLine) {
  Mutate([this](std::vector<std::string>& lines) {
    lines[FindLine("global_size ")] = "global_size many";
  });
  ExpectCorruption("bad global_size line");
}

TEST_F(StateIoCorruptionTest, BadWorldScoreLine) {
  Mutate([this](std::vector<std::string>& lines) {
    lines[FindLine("world_score ")] = "world_score large";
  });
  ExpectCorruption("bad world_score line");
}

TEST_F(StateIoCorruptionTest, BadPagesLine) {
  Mutate([this](std::vector<std::string>& lines) {
    lines[FindLine("pages ")] = "fragment 40";
  });
  ExpectCorruption("bad pages line");
}

TEST_F(StateIoCorruptionTest, BadPageRecord) {
  Mutate([this](std::vector<std::string>& lines) {
    lines[FindLine("pages ") + 1] = "pagezero 0.5 0";
  });
  ExpectCorruption("bad page record");
}

TEST_F(StateIoCorruptionTest, TruncatedSuccessorList) {
  // An absurd successor count makes the reader run past every following
  // number and fail on the first keyword it meets.
  Mutate([this](std::vector<std::string>& lines) {
    std::string& record = lines[FindLine("pages ") + 1];
    std::istringstream in(record);
    std::string page, score;
    in >> page >> score;
    record = page + " " + score + " 999999";
  });
  ExpectCorruption("truncated successor list");
}

TEST_F(StateIoCorruptionTest, BadWorldEntriesLine) {
  Mutate([this](std::vector<std::string>& lines) {
    std::string& line = lines[FindLine("world_entries ")];
    line = "worldentries" + line.substr(std::string("world_entries").size());
  });
  ExpectCorruption("bad world_entries line");
}

/// Inserts a crafted record as the *first* world entry (bumping the count),
/// so the targeted validation branch runs before any real entry.
void InsertWorldEntry(std::vector<std::string>& lines, size_t header_index,
                      const std::string& record) {
  const std::string prefix = "world_entries ";
  const size_t count = std::stoul(lines[header_index].substr(prefix.size()));
  lines[header_index] = prefix + std::to_string(count + 1);
  lines.insert(lines.begin() + header_index + 1, record);
}

TEST_F(StateIoCorruptionTest, BadWorldEntry) {
  Mutate([this](std::vector<std::string>& lines) {
    InsertWorldEntry(lines, FindLine("world_entries "), "notapage 3 0.1 1 7");
  });
  ExpectCorruption("bad world entry");
}

TEST_F(StateIoCorruptionTest, TruncatedWorldTargets) {
  Mutate([this](std::vector<std::string>& lines) {
    InsertWorldEntry(lines, FindLine("world_entries "), "5 3 0.1 999999 7");
  });
  ExpectCorruption("truncated world targets");
}

TEST_F(StateIoCorruptionTest, WorldEntryWithoutTargets) {
  Mutate([this](std::vector<std::string>& lines) {
    InsertWorldEntry(lines, FindLine("world_entries "), "5 3 0.1 0");
  });
  ExpectCorruption("world entry without targets");
}

TEST_F(StateIoCorruptionTest, WorldEntryWithZeroOutDegree) {
  Mutate([this](std::vector<std::string>& lines) {
    InsertWorldEntry(lines, FindLine("world_entries "), "5 0 0.1 1 7");
  });
  ExpectCorruption("world entry with zero out-degree");
}

TEST_F(StateIoCorruptionTest, NegativeWorldEntryScore) {
  Mutate([this](std::vector<std::string>& lines) {
    InsertWorldEntry(lines, FindLine("world_entries "), "5 3 -0.1 1 7");
  });
  ExpectCorruption("negative world entry score");
}

TEST_F(StateIoCorruptionTest, BadDanglingLine) {
  Mutate([this](std::vector<std::string>& lines) {
    std::string& line = lines[FindLine("dangling ")];
    line = "hanging" + line.substr(std::string("dangling").size());
  });
  ExpectCorruption("bad dangling line");
}

/// Appends a crafted dangling record (bumping the count); dangling is the
/// last section, so appending to the end of the body is appending to it.
void AppendDangling(std::vector<std::string>& lines, size_t header_index,
                    const std::string& record) {
  const std::string prefix = "dangling ";
  const size_t count = std::stoul(lines[header_index].substr(prefix.size()));
  lines[header_index] = prefix + std::to_string(count + 1);
  lines.push_back(record);
}

TEST_F(StateIoCorruptionTest, BadDanglingRecord) {
  Mutate([this](std::vector<std::string>& lines) {
    AppendDangling(lines, FindLine("dangling "), "notapage 0.1");
  });
  ExpectCorruption("bad dangling record");
}

TEST_F(StateIoCorruptionTest, NegativeDanglingScore) {
  Mutate([this](std::vector<std::string>& lines) {
    AppendDangling(lines, FindLine("dangling "), "7 -0.25");
  });
  ExpectCorruption("negative dangling score");
}

TEST_F(StateIoCorruptionTest, PeerWithoutPages) {
  Mutate([this](std::vector<std::string>& lines) {
    const size_t pages_at = FindLine("pages ");
    const size_t count = CountAfter("pages ");
    lines[pages_at] = "pages 0";
    lines.erase(lines.begin() + pages_at + 1, lines.begin() + pages_at + 1 + count);
  });
  ExpectCorruption("peer without pages");
}

TEST_F(StateIoCorruptionTest, DuplicatePagesInFragment) {
  Mutate([this](std::vector<std::string>& lines) {
    const size_t pages_at = FindLine("pages ");
    const size_t count = CountAfter("pages ");
    lines[pages_at] = "pages " + std::to_string(count + 1);
    lines.insert(lines.begin() + pages_at + 1, lines[pages_at + 1]);
  });
  ExpectCorruption("duplicate pages in fragment");
}

TEST_F(StateIoCorruptionTest, ImplausibleWorldScore) {
  Mutate([this](std::vector<std::string>& lines) {
    lines[FindLine("world_score ")] = "world_score 1.5";
  });
  ExpectCorruption("implausible scalar state");
  Mutate([this](std::vector<std::string>& lines) {
    lines[FindLine("world_score ")] = "world_score 0";
  });
  ExpectCorruption("implausible scalar state");
}

TEST_F(StateIoCorruptionTest, GlobalSizeSmallerThanFragment) {
  Mutate([this](std::vector<std::string>& lines) {
    lines[FindLine("global_size ")] = "global_size 1";
  });
  ExpectCorruption("implausible scalar state");
}

TEST_F(StateIoCorruptionTest, ImplausibleLocalScore) {
  const auto set_first_score = [this](const std::string& score) {
    Mutate([this, &score](std::vector<std::string>& lines) {
      std::string& record = lines[FindLine("pages ") + 1];
      std::istringstream in(record);
      std::string page, old_score, rest;
      in >> page >> old_score;
      std::getline(in, rest);
      record = page + " " + score + rest;
    });
  };
  set_first_score("1.5");
  ExpectCorruption("implausible local score");
  set_first_score("0");
  ExpectCorruption("implausible local score");
}

}  // namespace
}  // namespace core
}  // namespace jxp
