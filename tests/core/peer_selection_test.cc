#include "core/peer_selection.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace jxp {
namespace core {
namespace {

/// A network whose link structure makes peer 2 the clear in-link donor for
/// peer 0: peer 2's pages point into peer 0's pages, while peer 3 holds an
/// unrelated region. Peer 1 overlaps peer 0 heavily (cache exchange).
struct SelectorFixture {
  SelectorFixture() {
    graph::GraphBuilder builder(40);
    // Pages 0-9 belong to peer 0 (and largely to peer 1).
    // Pages 20-29 (peer 2) all point into 0-9.
    for (graph::PageId u = 20; u < 30; ++u) {
      builder.AddEdge(u, u - 20);
      builder.AddEdge(u, (u - 20 + 1) % 10);
    }
    // Pages 30-39 (peer 3) form a separate cycle.
    for (graph::PageId u = 30; u < 40; ++u) {
      builder.AddEdge(u, u == 39 ? 30 : u + 1);
    }
    // Pages 0-9 link forward among themselves.
    for (graph::PageId u = 0; u < 10; ++u) builder.AddEdge(u, (u + 1) % 10);
    graph = builder.Build();

    JxpOptions options;
    options.pr_tolerance = 1e-10;
    std::vector<std::vector<graph::PageId>> fragments = {
        {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
        {0, 1, 2, 3, 4, 5, 6, 7, 8, 19},  // Overlaps peer 0 on 9 pages.
        {20, 21, 22, 23, 24, 25, 26, 27, 28, 29},
        {30, 31, 32, 33, 34, 35, 36, 37, 38, 39},
    };
    for (size_t p = 0; p < fragments.size(); ++p) {
      network.AddPeer();
      peers.emplace_back(static_cast<p2p::PeerId>(p),
                         graph::Subgraph::Induce(graph, fragments[p]), graph.NumNodes(),
                         options);
    }
  }

  graph::Graph graph;
  p2p::Network network;
  std::vector<JxpPeer> peers;
};

TEST(RandomPeerSelectorTest, NeverPicksInitiatorOrDeadPeers) {
  SelectorFixture fx;
  fx.network.Leave(3);
  RandomPeerSelector selector;
  Random rng(1);
  for (int i = 0; i < 200; ++i) {
    const SelectionResult r = selector.SelectPartner(0, fx.network, rng);
    EXPECT_NE(r.partner, 0u);
    EXPECT_NE(r.partner, 3u);
    EXPECT_DOUBLE_EQ(r.synopsis_bytes, 0.0);
  }
}

TEST(PreMeetingSelectorTest, CachesHighContainmentPeers) {
  SelectorFixture fx;
  PreMeetingSelector::Options options;
  options.mips_permutations = 128;
  options.containment_threshold = 0.3;
  PreMeetingSelector selector(options, &fx.peers);
  // Peer 0 meets peer 2 (whose successors cover all of peer 0's pages).
  const double bytes = selector.AfterMeeting(0, 2, fx.network);
  EXPECT_GT(bytes, 0.0);
  // Subsequent non-random selections should favor the cached peer 2.
  Random rng(7);
  int picked_2 = 0;
  for (int i = 0; i < 50; ++i) {
    const SelectionResult r = selector.SelectPartner(0, fx.network, rng);
    if (r.partner == 2) ++picked_2;
  }
  EXPECT_GT(picked_2, 10);
}

TEST(PreMeetingSelectorTest, OverlapTriggersCacheExchange) {
  SelectorFixture fx;
  PreMeetingSelector::Options options;
  options.mips_permutations = 128;
  options.containment_threshold = 0.3;
  options.overlap_threshold = 0.5;
  options.random_every_k = 1000;  // Effectively disable for this test.
  options.revisit_probability = 0.0;
  PreMeetingSelector selector(options, &fx.peers);
  // Peer 1 learns that peer 2 is a good in-link donor.
  selector.AfterMeeting(1, 2, fx.network);
  // Peers 0 and 1 overlap strongly: peer 0 should receive peer 1's cache
  // (containing peer 2) as a candidate...
  selector.AfterMeeting(0, 1, fx.network);
  // ...and pick it next.
  Random rng(3);
  const SelectionResult r = selector.SelectPartner(0, fx.network, rng);
  EXPECT_EQ(r.partner, 2u);
}

TEST(PreMeetingSelectorTest, EveryKthSelectionIsRandom) {
  SelectorFixture fx;
  PreMeetingSelector::Options options;
  options.random_every_k = 2;
  options.revisit_probability = 1.0;
  options.containment_threshold = 0.0;  // Cache everyone.
  PreMeetingSelector selector(options, &fx.peers);
  selector.AfterMeeting(0, 2, fx.network);
  Random rng(11);
  // With k = 2 every second pick is uniform; over many picks all peers must
  // appear (fairness precondition of Theorem 5.4).
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 300; ++i) counts[selector.SelectPartner(0, fx.network, rng).partner]++;
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[3], 0);
}

TEST(PreMeetingSelectorTest, FragmentChangeClearsState) {
  SelectorFixture fx;
  PreMeetingSelector::Options options;
  options.containment_threshold = 0.0;
  options.random_every_k = 1000;
  options.revisit_probability = 1.0;
  PreMeetingSelector selector(options, &fx.peers);
  selector.AfterMeeting(0, 2, fx.network);
  selector.OnFragmentChanged(0);
  // With the cache cleared and no candidates, selection falls back to
  // random (works without crashing, never picks self).
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(selector.SelectPartner(0, fx.network, rng).partner, 0u);
  }
}

TEST(PreMeetingSelectorTest, SkipsDeadCandidates) {
  SelectorFixture fx;
  PreMeetingSelector::Options options;
  options.containment_threshold = 0.0;
  options.overlap_threshold = 0.5;
  options.random_every_k = 1000;
  options.revisit_probability = 0.0;
  PreMeetingSelector selector(options, &fx.peers);
  selector.AfterMeeting(1, 2, fx.network);
  selector.AfterMeeting(0, 1, fx.network);
  fx.network.Leave(2);
  Random rng(9);
  for (int i = 0; i < 50; ++i) {
    const SelectionResult r = selector.SelectPartner(0, fx.network, rng);
    EXPECT_NE(r.partner, 2u);
    EXPECT_NE(r.partner, 0u);
  }
}

}  // namespace
}  // namespace core
}  // namespace jxp
