// Integration tests: adversarial settings driven through JxpSimulation.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/simulation.h"
#include "crawler/partitioner.h"
#include "graph/generators.h"

namespace jxp {
namespace core {
namespace {

struct AdversarialSimFixture {
  AdversarialSimFixture() {
    Random rng(55);
    graph::WebGraphParams params;
    params.num_nodes = 500;
    params.num_categories = 4;
    collection = GenerateWebGraph(params, rng);
    crawler::PartitionOptions partition;
    partition.peers_per_category = 3;
    partition.crawler.max_pages = 120;
    fragments = CrawlBasedPartition(collection, partition, rng);
  }

  graph::CategorizedGraph collection;
  std::vector<std::vector<graph::PageId>> fragments;
};

TEST(SimulationAdversarialTest, AttackersDegradeAccuracy) {
  AdversarialSimFixture fx;
  auto run = [&](size_t attackers, bool defended) {
    SimulationConfig config;
    config.seed = 56;
    config.eval_top_k = 50;
    config.num_attackers = attackers;
    config.attack.type = AttackOptions::Type::kScoreInflation;
    config.attack.inflation_factor = 30.0;
    config.jxp.defense.enabled = defended;
    JxpSimulation sim(fx.collection.graph, fx.fragments, config);
    sim.RunMeetings(400);
    return sim.Evaluate().linear_error;
  };
  const double clean = run(0, false);
  const double attacked = run(4, false);
  const double defended = run(4, true);
  EXPECT_GT(attacked, 2 * clean);     // Attack visibly distorts scores.
  EXPECT_LT(defended, attacked / 2);  // Defense recovers most of it.
}

TEST(SimulationAdversarialTest, DefendedHonestRunMatchesUndefended) {
  AdversarialSimFixture fx;
  auto run = [&](bool defended) {
    SimulationConfig config;
    config.seed = 57;
    config.eval_top_k = 50;
    config.jxp.defense.enabled = defended;
    JxpSimulation sim(fx.collection.graph, fx.fragments, config);
    sim.RunMeetings(300);
    size_t rejected = 0;
    for (const JxpPeer& peer : sim.peers()) rejected += peer.rejected_meetings();
    return std::make_pair(sim.Evaluate().linear_error, rejected);
  };
  const auto [undefended_error, undefended_rejected] = run(false);
  const auto [defended_error, defended_rejected] = run(true);
  EXPECT_EQ(undefended_rejected, 0u);
  // The defense may reject a handful of asymmetric-knowledge messages early
  // on; accuracy must remain essentially unchanged.
  EXPECT_NEAR(defended_error, undefended_error, undefended_error * 0.25 + 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace jxp
