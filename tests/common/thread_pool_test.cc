#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace jxp {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, 100, 7, [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  for (const size_t threads : {1u, 2u, 3u, 8u}) {
    for (const size_t grain : {1u, 5u, 64u, 1000u}) {
      ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(513);
      pool.ParallelFor(0, hits.size(), grain, [&](size_t i) { ++hits[i]; });
      for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1) << "threads=" << threads << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(5, 5, 1, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, OffsetRange) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(10, 20, 3, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 10u + 11 + 12 + 13 + 14 + 15 + 16 + 17 + 18 + 19);
}

TEST(ThreadPoolTest, BlockPartitionIndependentOfThreadCount) {
  // The block boundaries seen by the body must depend only on
  // (begin, end, grain) — this is what makes blockwise reductions
  // bit-reproducible at any thread count.
  using Block = std::tuple<size_t, size_t, size_t>;
  auto collect = [](size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<Block> blocks;
    pool.ParallelForBlocks(3, 1003, 64, [&](size_t b, size_t e, size_t idx) {
      std::lock_guard<std::mutex> lock(mu);
      blocks.emplace_back(b, e, idx);
    });
    std::sort(blocks.begin(), blocks.end(),
              [](const Block& a, const Block& b) { return std::get<2>(a) < std::get<2>(b); });
    return blocks;
  };
  const auto one = collect(1);
  EXPECT_EQ(one, collect(2));
  EXPECT_EQ(one, collect(5));
  EXPECT_EQ(one, collect(8));
  // Fixed partition: block i covers [3 + 64 i, min(1003, 3 + 64 (i+1))).
  ASSERT_EQ(one.size(), 16u);
  EXPECT_EQ(std::get<0>(one.front()), 3u);
  EXPECT_EQ(std::get<1>(one.back()), 1003u);
}

TEST(ThreadPoolTest, BlockwiseReductionIsBitReproducible) {
  // A reduction that accumulates per block and combines partials in block
  // order must give bit-identical results at every thread count.
  const size_t n = 10000;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = 1.0 / static_cast<double>(i + 3);
  auto reduce = [&](size_t threads) {
    ThreadPool pool(threads);
    const size_t grain = 128;
    std::vector<double> partial((n + grain - 1) / grain, 0.0);
    pool.ParallelForBlocks(0, n, grain, [&](size_t b, size_t e, size_t idx) {
      double s = 0;
      for (size_t i = b; i < e; ++i) s += values[i];
      partial[idx] = s;
    });
    double sum = 0;
    for (double p : partial) sum += p;
    return sum;
  };
  const double expected = reduce(1);
  EXPECT_EQ(expected, reduce(2));
  EXPECT_EQ(expected, reduce(8));
}

TEST(ThreadPoolTest, ReusableAcrossManyLaunches) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 200; ++rep) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 64, 4, [&](size_t) { ++count; });
    ASSERT_EQ(count.load(), 64);
  }
}

}  // namespace
}  // namespace jxp
