#include "common/status.h"

#include <gtest/gtest.h>

#include "common/statusor.h"

namespace jxp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("page 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "page 42");
  EXPECT_EQ(s.ToString(), "NotFound: page 42");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, OkCodeNormalizesMessage) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

Status FailingFunction() { return Status::IOError("disk on fire"); }

Status Propagates() {
  JXP_RETURN_IF_ERROR(FailingFunction());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kIOError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> MaybeInt(bool fail) {
  if (fail) return Status::OutOfRange("too big");
  return 7;
}

StatusOr<int> Doubled(bool fail) {
  JXP_ASSIGN_OR_RETURN(const int v, MaybeInt(fail));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnHappyPath) {
  auto v = Doubled(false);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 14);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  auto v = Doubled(true);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(3);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 3);
}

}  // namespace
}  // namespace jxp
