#include "common/flags.h"

#include <gtest/gtest.h>

namespace jxp {
namespace {

Flags ParseOk(std::vector<std::string> args) {
  std::vector<char*> argv = {const_cast<char*>("prog")};
  for (auto& a : args) argv.push_back(a.data());
  Flags flags;
  const Status s = flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(s.ok()) << s;
  return flags;
}

TEST(FlagsTest, ParsesEqualsForm) {
  Flags f = ParseOk({"--scale=0.5", "--name=web"});
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(f.GetString("name", ""), "web");
}

TEST(FlagsTest, ParsesSpaceForm) {
  Flags f = ParseOk({"--meetings", "300"});
  EXPECT_EQ(f.GetInt("meetings", 0), 300);
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = ParseOk({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = ParseOk({});
  EXPECT_EQ(f.GetInt("missing", 42), 42);
  EXPECT_EQ(f.GetString("missing", "d"), "d");
  EXPECT_FALSE(f.GetBool("missing", false));
  EXPECT_FALSE(f.Has("missing"));
}

TEST(FlagsTest, RejectsPositionalArguments) {
  char prog[] = "prog";
  char pos[] = "positional";
  char* argv[] = {prog, pos};
  Flags flags;
  EXPECT_EQ(flags.Parse(2, argv).code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, NegativeNumbers) {
  Flags f = ParseOk({"--offset=-5"});
  EXPECT_EQ(f.GetInt("offset", 0), -5);
}

TEST(FlagsTest, BoolLiterals) {
  Flags f = ParseOk({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_FALSE(f.GetBool("d", true));
}

}  // namespace
}  // namespace jxp
