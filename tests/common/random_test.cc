#include "common/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace jxp {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RandomTest, BoundedStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RandomTest, BoundedIsRoughlyUniform) {
  Random rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) counts[rng.NextBounded(kBuckets)]++;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1) << "bucket " << b;
  }
}

TEST(RandomTest, NextInRangeInclusive) {
  Random rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values hit.
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, NextBoolMatchesProbability) {
  Random rng(13);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.NextBool(0.3);
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RandomTest, SampleWithoutReplacementDistinct) {
  Random rng(17);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    const std::vector<size_t> sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(RandomTest, SampleFullRangeIsPermutation) {
  Random rng(19);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RandomTest, ReseedRestartsStream) {
  Random rng(42);
  const uint64_t first = rng.NextUint64();
  rng.NextUint64();
  rng.Reseed(42);
  EXPECT_EQ(rng.NextUint64(), first);
}

TEST(WeightedPickTest, RespectsWeights) {
  Random rng(23);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 40000; ++i) counts[WeightedPick(weights, rng)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const uint64_t a = sm.Next();
  const uint64_t b = sm.Next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.Next(), a);
  EXPECT_EQ(sm2.Next(), b);
}

}  // namespace
}  // namespace jxp
