#include "common/varint.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace jxp {
namespace {

TEST(VarintCheckedTest, RoundTrips32) {
  const uint32_t values[] = {0,      1,        0x7fu,      0x80u,
                             0x3fffu, 0x4000u, 0x1fffffu,  0xffffffu,
                             1u << 28, std::numeric_limits<uint32_t>::max()};
  for (uint32_t v : values) {
    std::vector<uint8_t> bytes;
    VByteEncode32(v, bytes);
    size_t offset = 0;
    uint32_t decoded = 0;
    ASSERT_TRUE(VByteDecode32Checked(bytes.data(), bytes.size(), offset, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(offset, bytes.size());
  }
}

TEST(VarintCheckedTest, RoundTrips64) {
  const uint64_t values[] = {0, 0x7fu, 0x80u, 1ull << 35, 1ull << 62,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::vector<uint8_t> bytes;
    VByteEncode64(v, bytes);
    size_t offset = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(VByteDecode64Checked(bytes.data(), bytes.size(), offset, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(offset, bytes.size());
  }
}

TEST(VarintCheckedTest, RejectsTruncatedInput) {
  // Every proper prefix of a multi-byte encoding must fail and leave the
  // offset untouched (truncation surfaces as an error, never as a read past
  // the buffer).
  std::vector<uint8_t> bytes;
  VByteEncode32(std::numeric_limits<uint32_t>::max(), bytes);
  ASSERT_EQ(bytes.size(), 5u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    size_t offset = 0;
    uint32_t value = 0;
    EXPECT_FALSE(VByteDecode32Checked(bytes.data(), len, offset, &value)) << len;
    EXPECT_EQ(offset, 0u);
  }
  size_t offset = 0;
  uint64_t value64 = 0;
  EXPECT_FALSE(VByteDecode64Checked(bytes.data(), 0, offset, &value64));
}

TEST(VarintCheckedTest, RejectsOverlongEncodings) {
  // 6 continuation bytes overflow the 32-bit value space outright.
  const uint8_t too_long[] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  size_t offset = 0;
  uint32_t value = 0;
  EXPECT_FALSE(VByteDecode32Checked(too_long, sizeof(too_long), offset, &value));
  EXPECT_EQ(offset, 0u);

  // A 5-byte encoding whose final byte carries more than 4 data bits would
  // silently drop the high bits in the unchecked decoder.
  const uint8_t overflow_final[] = {0xff, 0xff, 0xff, 0xff, 0x1f};
  offset = 0;
  EXPECT_FALSE(
      VByteDecode32Checked(overflow_final, sizeof(overflow_final), offset, &value));
  EXPECT_EQ(offset, 0u);

  // The same boundary for 64-bit: byte 10 may only carry the topmost bit.
  const uint8_t overflow_final64[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                      0xff, 0xff, 0xff, 0xff, 0x03};
  offset = 0;
  uint64_t value64 = 0;
  EXPECT_FALSE(VByteDecode64Checked(overflow_final64, sizeof(overflow_final64), offset,
                                    &value64));
  EXPECT_EQ(offset, 0u);

  // The widest legal encodings still decode.
  const uint8_t max32[] = {0xff, 0xff, 0xff, 0xff, 0x0f};
  offset = 0;
  ASSERT_TRUE(VByteDecode32Checked(max32, sizeof(max32), offset, &value));
  EXPECT_EQ(value, std::numeric_limits<uint32_t>::max());
  const uint8_t max64[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                           0xff, 0xff, 0xff, 0xff, 0x01};
  offset = 0;
  ASSERT_TRUE(VByteDecode64Checked(max64, sizeof(max64), offset, &value64));
  EXPECT_EQ(value64, std::numeric_limits<uint64_t>::max());
}

TEST(VarintArrayTest, DecodesMixedWidthsAcrossWideWindows) {
  // Interleave 1-byte and multi-byte values so the decoder flips between the
  // 8-wide fast path and the checked scalar fallback.
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 100; ++i) {
    values.push_back(i % 17 == 0 ? 0x12345u + i : i % 0x80u);
  }
  std::vector<uint8_t> bytes;
  for (uint32_t v : values) VByteEncode32(v, bytes);

  std::vector<uint32_t> decoded(values.size());
  size_t offset = 0;
  ASSERT_TRUE(VByteDecodeArray32(bytes.data(), bytes.size(), offset, values.size(),
                                 decoded.data()));
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(decoded, values);
}

TEST(VarintArrayTest, AgreesWithScalarDecoderOnAllSmallValues) {
  // All-small input exercises the pure wide path plus the < 8 remainder.
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 83; ++i) values.push_back(i % 0x80u);
  std::vector<uint8_t> bytes;
  for (uint32_t v : values) VByteEncode32(v, bytes);

  std::vector<uint32_t> wide(values.size());
  size_t offset = 0;
  ASSERT_TRUE(
      VByteDecodeArray32(bytes.data(), bytes.size(), offset, values.size(), wide.data()));
  size_t scalar_offset = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(wide[i], VByteDecode32(bytes.data(), scalar_offset)) << i;
  }
  EXPECT_EQ(offset, scalar_offset);
}

TEST(VarintArrayTest, RejectsTruncatedTail) {
  std::vector<uint32_t> values(20, 0x4000u);  // 3 bytes each.
  std::vector<uint8_t> bytes;
  for (uint32_t v : values) VByteEncode32(v, bytes);
  std::vector<uint32_t> decoded(values.size());
  // Cutting the buffer anywhere inside the stream must fail cleanly.
  for (size_t cut : {size_t{0}, size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    size_t offset = 0;
    EXPECT_FALSE(
        VByteDecodeArray32(bytes.data(), cut, offset, values.size(), decoded.data()))
        << cut;
  }
}

}  // namespace
}  // namespace jxp
