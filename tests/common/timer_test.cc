#include "common/timer.h"

#include <gtest/gtest.h>

namespace jxp {
namespace {

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  // Burn a little wall time.
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i) * 1e-9;
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_LT(elapsed, 10.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedSeconds() * 50);
}

TEST(WallTimerTest, ResetRestarts) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i) * 1e-9;
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(CpuTimerTest, MeasuresCpuWork) {
  CpuTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 5000000; ++i) sink += static_cast<double>(i) * 1e-9;
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

TEST(ThreadCpuTimerTest, MeasuresCallingThreadCpu) {
  ThreadCpuTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 5000000; ++i) sink += static_cast<double>(i) * 1e-9;
  const double busy = timer.ElapsedSeconds();
  EXPECT_GT(busy, 0.0);
  // The thread clock must not run while the thread sleeps.
  timer.Reset();
  timespec nap{0, 20 * 1000 * 1000};  // 20 ms.
  nanosleep(&nap, nullptr);
  EXPECT_LT(timer.ElapsedMillis(), 15.0);
}

TEST(CpuTimerTest, MonotoneNonDecreasing) {
  CpuTimer timer;
  double last = 0;
  for (int round = 0; round < 5; ++round) {
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
    const double now = timer.ElapsedSeconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace jxp
