#include "common/hash.h"

#include <set>

#include <gtest/gtest.h>

namespace jxp {
namespace {

TEST(HashTest, Mix64IsDeterministic) { EXPECT_EQ(Mix64(42), Mix64(42)); }

TEST(HashTest, Mix64SpreadsNearbyKeys) {
  std::set<uint64_t> outputs;
  for (uint64_t k = 0; k < 1000; ++k) outputs.insert(Mix64(k));
  EXPECT_EQ(outputs.size(), 1000u);
  // High bits should differ between consecutive keys most of the time.
  int same_top_byte = 0;
  for (uint64_t k = 0; k + 1 < 1000; ++k) {
    if ((Mix64(k) >> 56) == (Mix64(k + 1) >> 56)) ++same_top_byte;
  }
  EXPECT_LT(same_top_byte, 30);
}

TEST(HashTest, HashCombineOrderSensitive) {
  const uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  const uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashTest, HashStringBasics) {
  EXPECT_EQ(HashString("pagerank"), HashString("pagerank"));
  EXPECT_NE(HashString("pagerank"), HashString("pagerang"));
  EXPECT_NE(HashString(""), HashString("a"));
}

}  // namespace
}  // namespace jxp
