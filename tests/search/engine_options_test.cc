// Tests for the MinervaEngine option knobs: routing fan-out, per-peer
// result caps, and fusion-weight extremes.

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "search/engine.h"

namespace jxp {
namespace search {
namespace {

struct OptionsFixture {
  OptionsFixture() {
    Random rng(61);
    graph::WebGraphParams params;
    params.num_nodes = 600;
    params.num_categories = 3;
    collection = GenerateWebGraph(params, rng);
    CorpusOptions corpus_options;
    corpus_options.vocabulary_size = 3000;
    corpus_options.category_vocab_size = 400;
    corpus = Corpus::Generate(collection, corpus_options, 62);
    for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
      jxp_scores[p] = 1.0 / static_cast<double>(collection.graph.NumNodes());
    }
  }

  void AddPeers(MinervaEngine& engine, size_t n) const {
    for (size_t peer = 0; peer < n; ++peer) {
      std::vector<graph::PageId> pages;
      for (graph::PageId p = static_cast<graph::PageId>(peer);
           p < collection.graph.NumNodes(); p += n) {
        pages.push_back(p);
      }
      engine.AddPeer(static_cast<p2p::PeerId>(peer), pages);
    }
  }

  std::vector<TermId> Query(uint64_t seed) const {
    Random rng(seed);
    return corpus.SampleQueryTerms(1, 3, rng);
  }

  graph::CategorizedGraph collection;
  Corpus corpus;
  std::unordered_map<graph::PageId, double> jxp_scores;
};

TEST(EngineOptionsTest, WiderFanoutFindsMoreCandidates) {
  OptionsFixture fx;
  SearchOptions narrow;
  narrow.peers_to_route = 1;
  SearchOptions wide;
  wide.peers_to_route = 8;
  MinervaEngine engine_narrow(&fx.corpus, narrow);
  MinervaEngine engine_wide(&fx.corpus, wide);
  fx.AddPeers(engine_narrow, 8);
  fx.AddPeers(engine_wide, 8);
  const auto query = fx.Query(1);
  const auto few = engine_narrow.ExecuteQuery(query, fx.jxp_scores,
                                              RoutingPolicy::kDocumentFrequency);
  const auto many =
      engine_wide.ExecuteQuery(query, fx.jxp_scores, RoutingPolicy::kDocumentFrequency);
  EXPECT_LT(few.size(), many.size());
}

TEST(EngineOptionsTest, ResultsPerPeerCapsCandidates) {
  OptionsFixture fx;
  SearchOptions options;
  options.peers_to_route = 4;
  options.results_per_peer = 2;
  MinervaEngine engine(&fx.corpus, options);
  fx.AddPeers(engine, 4);
  const auto results =
      engine.ExecuteQuery(fx.Query(2), fx.jxp_scores, RoutingPolicy::kDocumentFrequency);
  // At most peers * results_per_peer merged candidates.
  EXPECT_LE(results.size(), 8u);
  EXPECT_FALSE(results.empty());
}

TEST(EngineOptionsTest, ZeroJxpWeightIsPureTfIdf) {
  OptionsFixture fx;
  SearchOptions options;
  options.jxp_weight = 0.0;
  MinervaEngine engine(&fx.corpus, options);
  fx.AddPeers(engine, 4);
  const auto results =
      engine.ExecuteQuery(fx.Query(3), fx.jxp_scores, RoutingPolicy::kDocumentFrequency);
  ASSERT_GT(results.size(), 1u);
  // Fused order equals tf*idf order.
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].tfidf, results[i].tfidf);
  }
}

TEST(EngineOptionsTest, FullJxpWeightRanksByAuthority) {
  OptionsFixture fx;
  // Give page ids descending authority so the expected order is clear.
  for (auto& [page, score] : fx.jxp_scores) {
    score = 1.0 / static_cast<double>(page + 1);
  }
  SearchOptions options;
  options.jxp_weight = 1.0;
  MinervaEngine engine(&fx.corpus, options);
  fx.AddPeers(engine, 4);
  const auto results =
      engine.ExecuteQuery(fx.Query(4), fx.jxp_scores, RoutingPolicy::kDocumentFrequency);
  ASSERT_GT(results.size(), 1u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i - 1].page, results[i].page);
  }
}

}  // namespace
}  // namespace search
}  // namespace jxp
