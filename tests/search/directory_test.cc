#include "search/directory.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "pagerank/pagerank.h"
#include "search/engine.h"

namespace jxp {
namespace search {
namespace {

TEST(DhtDirectoryTest, PublishAndLookup) {
  p2p::ChordRing ring;
  for (p2p::PeerId p = 0; p < 8; ++p) JXP_CHECK_OK(ring.Join(p));
  ring.Stabilize();
  DhtDirectory directory(&ring);

  directory.Publish(42, {.peer = 1, .document_frequency = 10, .jxp_mass = 0.5});
  directory.Publish(42, {.peer = 3, .document_frequency = 4, .jxp_mass = 0.1});
  directory.Publish(7, {.peer = 2, .document_frequency = 1, .jxp_mass = 0.01});

  const auto& posts = directory.Lookup(42, 0);
  ASSERT_EQ(posts.size(), 2u);
  EXPECT_EQ(directory.Lookup(7, 5).size(), 1u);
  EXPECT_TRUE(directory.Lookup(999, 5).empty());
  EXPECT_EQ(directory.NumTerms(), 2u);
}

TEST(DhtDirectoryTest, RepublishReplacesPost) {
  p2p::ChordRing ring;
  for (p2p::PeerId p = 0; p < 4; ++p) JXP_CHECK_OK(ring.Join(p));
  DhtDirectory directory(&ring);
  directory.Publish(5, {.peer = 1, .document_frequency = 2, .jxp_mass = 0.1});
  directory.Publish(5, {.peer = 1, .document_frequency = 9, .jxp_mass = 0.9});
  const auto& posts = directory.Lookup(5, 0);
  ASSERT_EQ(posts.size(), 1u);
  EXPECT_EQ(posts[0].document_frequency, 9u);
}

TEST(DhtDirectoryTest, AccountsRoutingCosts) {
  p2p::ChordRing ring;
  for (p2p::PeerId p = 0; p < 32; ++p) JXP_CHECK_OK(ring.Join(p));
  ring.Stabilize();
  DhtDirectory directory(&ring);
  for (TermId t = 0; t < 100; ++t) {
    directory.Publish(t, {.peer = static_cast<p2p::PeerId>(t % 32),
                          .document_frequency = 1,
                          .jxp_mass = 0.0});
  }
  EXPECT_GT(directory.total_publish_hops(), 0u);
  EXPECT_GT(directory.total_wire_bytes(), 0.0);
  const size_t hops_before = directory.total_lookup_hops();
  directory.Lookup(50, 3);
  EXPECT_GE(directory.total_lookup_hops(), hops_before);
}

TEST(DhtDirectoryTest, RoutingIsEmptyWhenNoPeerPostsAnyQueryTerm) {
  // A published directory asked about terms nobody posted must route to no
  // peers (and must not crash or fabricate a fallback peer).
  Random rng(13);
  graph::WebGraphParams params;
  params.num_nodes = 200;
  params.num_categories = 2;
  const graph::CategorizedGraph collection = GenerateWebGraph(params, rng);
  CorpusOptions corpus_options;
  corpus_options.vocabulary_size = 2000;
  corpus_options.category_vocab_size = 300;
  const Corpus corpus = Corpus::Generate(collection, corpus_options, 14);

  MinervaEngine engine(&corpus, SearchOptions());
  p2p::ChordRing ring;
  for (p2p::PeerId peer = 0; peer < 2; ++peer) {
    std::vector<graph::PageId> pages;
    for (graph::PageId p = peer; p < collection.graph.NumNodes(); p += 2) {
      pages.push_back(p);
    }
    engine.AddPeer(peer, pages);
    JXP_CHECK_OK(ring.Join(peer));
  }
  ring.Stabilize();
  DhtDirectory directory(&ring);
  engine.PublishToDirectory(directory, {});
  ASSERT_GT(directory.NumTerms(), 0u);

  // Term ids far beyond the vocabulary: no peer has posted them.
  const std::vector<TermId> unposted = {static_cast<TermId>(900001),
                                        static_cast<TermId>(900002)};
  for (const RoutingPolicy policy :
       {RoutingPolicy::kDocumentFrequency, RoutingPolicy::kJxpAuthority}) {
    const auto routed =
        engine.RoutePeersViaDirectory(unposted, directory, /*asking_peer=*/0, policy);
    EXPECT_TRUE(routed.empty());
  }
  // An empty query routes nowhere either.
  EXPECT_TRUE(engine
                  .RoutePeersViaDirectory({}, directory, /*asking_peer=*/1,
                                          RoutingPolicy::kDocumentFrequency)
                  .empty());
}

TEST(DhtDirectoryTest, DirectoryRoutingMatchesOmniscientRouting) {
  // Build a small engine, publish everything, and verify that DHT-based
  // routing ranks the same best peer as the omniscient in-process routing.
  Random rng(9);
  graph::WebGraphParams params;
  params.num_nodes = 400;
  params.num_categories = 4;
  const graph::CategorizedGraph collection = GenerateWebGraph(params, rng);
  CorpusOptions corpus_options;
  corpus_options.vocabulary_size = 3000;
  corpus_options.category_vocab_size = 400;
  const Corpus corpus = Corpus::Generate(collection, corpus_options, 10);

  MinervaEngine engine(&corpus, SearchOptions());
  p2p::ChordRing ring;
  for (p2p::PeerId peer = 0; peer < 4; ++peer) {
    std::vector<graph::PageId> pages;
    for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
      if (collection.category[p] == peer) pages.push_back(p);
    }
    engine.AddPeer(peer, pages);
    JXP_CHECK_OK(ring.Join(peer));
  }
  ring.Stabilize();

  const auto truth = ComputePageRank(collection.graph, pagerank::PageRankOptions());
  std::unordered_map<graph::PageId, double> jxp_scores;
  for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
    jxp_scores[p] = truth.scores[p];
  }
  DhtDirectory directory(&ring);
  engine.PublishToDirectory(directory, jxp_scores);
  EXPECT_GT(directory.NumTerms(), 100u);

  Random qrng(11);
  for (graph::CategoryId category = 0; category < 4; ++category) {
    const auto query = corpus.SampleQueryTerms(category, 3, qrng);
    const auto omniscient =
        engine.RoutePeers(query, jxp_scores, RoutingPolicy::kDocumentFrequency);
    const auto via_dht = engine.RoutePeersViaDirectory(
        query, directory, /*asking_peer=*/0, RoutingPolicy::kDocumentFrequency);
    ASSERT_FALSE(via_dht.empty());
    EXPECT_EQ(via_dht[0], omniscient[0]) << "category " << category;
  }
}

}  // namespace
}  // namespace search
}  // namespace jxp
