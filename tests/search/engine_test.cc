#include "search/engine.h"

#include <gtest/gtest.h>

#include "metrics/ranking.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace search {
namespace {

struct EngineFixture {
  EngineFixture() {
    Random rng(21);
    graph::WebGraphParams params;
    params.num_nodes = 800;
    params.num_categories = 4;
    params.mean_out_degree = 6;
    collection = GenerateWebGraph(params, rng);

    CorpusOptions corpus_options;
    corpus_options.vocabulary_size = 5000;
    corpus_options.category_vocab_size = 600;
    corpus = Corpus::Generate(collection, corpus_options, 22);

    pagerank_result = ComputePageRank(collection.graph, pagerank::PageRankOptions());
    // The "JXP scores" for engine tests: the true PR (the converged case).
    for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
      jxp_scores[p] = pagerank_result.scores[p];
    }
  }

  /// Partitions pages across `n` peers by page id stripes.
  void AddStripedPeers(MinervaEngine& engine, size_t n) const {
    for (size_t peer = 0; peer < n; ++peer) {
      std::vector<graph::PageId> pages;
      for (graph::PageId p = static_cast<graph::PageId>(peer);
           p < collection.graph.NumNodes(); p += n) {
        pages.push_back(p);
      }
      engine.AddPeer(static_cast<p2p::PeerId>(peer), pages);
    }
  }

  graph::CategorizedGraph collection;
  Corpus corpus;
  pagerank::PageRankResult pagerank_result;
  std::unordered_map<graph::PageId, double> jxp_scores;
};

TEST(PeerIndexTest, PostingsAndDf) {
  Document doc;
  doc.page = 3;
  doc.terms = {{10, 2}, {20, 1}};
  doc.length = 3;
  PeerIndex index(0);
  index.AddDocument(doc);
  EXPECT_EQ(index.NumDocuments(), 1u);
  ASSERT_NE(index.PostingsFor(10), nullptr);
  EXPECT_EQ((*index.PostingsFor(10))[0].page, 3u);
  EXPECT_EQ((*index.PostingsFor(10))[0].tf, 2u);
  EXPECT_EQ(index.PostingsFor(99), nullptr);
  EXPECT_EQ(index.LocalDocumentFrequency(20), 1u);
  EXPECT_EQ(index.LocalDocumentFrequency(99), 0u);
}

TEST(MinervaEngineTest, RetrievesOnTopicPages) {
  EngineFixture fx;
  SearchOptions options;
  options.peers_to_route = 4;
  MinervaEngine engine(&fx.corpus, options);
  fx.AddStripedPeers(engine, 8);

  Random rng(5);
  const auto query = fx.corpus.SampleQueryTerms(2, 3, rng);
  const auto results = engine.ExecuteQuery(query, fx.jxp_scores,
                                           RoutingPolicy::kDocumentFrequency);
  ASSERT_FALSE(results.empty());
  // The bulk of the top results are on the query's topic.
  size_t on_topic = 0;
  const size_t top = std::min<size_t>(10, results.size());
  for (size_t i = 0; i < top; ++i) {
    if (fx.collection.category[results[i].page] == 2) ++on_topic;
  }
  EXPECT_GE(on_topic, top / 2);
}

TEST(MinervaEngineTest, RoutingPrefersPeersWithMatchingContent) {
  EngineFixture fx;
  SearchOptions options;
  MinervaEngine engine(&fx.corpus, options);
  // Peer 0: only category-0 pages; peer 1: only category-1 pages.
  std::vector<graph::PageId> cat0;
  std::vector<graph::PageId> cat1;
  for (graph::PageId p = 0; p < fx.collection.graph.NumNodes(); ++p) {
    if (fx.collection.category[p] == 0) cat0.push_back(p);
    if (fx.collection.category[p] == 1) cat1.push_back(p);
  }
  engine.AddPeer(0, cat0);
  engine.AddPeer(1, cat1);
  Random rng(6);
  const auto query = fx.corpus.SampleQueryTerms(0, 3, rng);
  const auto routed =
      engine.RoutePeers(query, fx.jxp_scores, RoutingPolicy::kDocumentFrequency);
  ASSERT_EQ(routed.size(), 2u);
  EXPECT_EQ(routed[0], 0u);
  const auto routed_jxp =
      engine.RoutePeers(query, fx.jxp_scores, RoutingPolicy::kJxpAuthority);
  EXPECT_EQ(routed_jxp[0], 0u);
}

TEST(MinervaEngineTest, FusionPromotesAuthoritativePages) {
  EngineFixture fx;
  SearchOptions options;
  options.peers_to_route = 8;
  options.jxp_weight = 0.4;
  MinervaEngine engine(&fx.corpus, options);
  fx.AddStripedPeers(engine, 8);

  Random rng(7);
  double tfidf_precision_sum = 0;
  double fused_precision_sum = 0;
  const int kQueries = 8;
  for (int q = 0; q < kQueries; ++q) {
    const graph::CategoryId category = q % fx.collection.num_categories;
    const auto query = fx.corpus.SampleQueryTerms(category, 3, rng);
    const auto relevant =
        RelevantPages(fx.collection, fx.pagerank_result.scores, category, 0.05);
    auto results =
        engine.ExecuteQuery(query, fx.jxp_scores, RoutingPolicy::kDocumentFrequency);
    const auto by_tfidf = RankByTfIdf(results, 10);
    const auto by_fused = RankByFused(results, 10);
    tfidf_precision_sum += metrics::PrecisionAtK(by_tfidf, relevant, 10);
    fused_precision_sum += metrics::PrecisionAtK(by_fused, relevant, 10);
  }
  // The paper's Table 2 effect: fusing authority into the ranking lifts
  // precision on average.
  EXPECT_GT(fused_precision_sum, tfidf_precision_sum);
}

TEST(MinervaEngineTest, TfIdfScoreBasics) {
  EngineFixture fx;
  MinervaEngine engine(&fx.corpus, SearchOptions());
  const Document& doc = fx.corpus.DocumentFor(0);
  ASSERT_FALSE(doc.terms.empty());
  const TermId present = doc.terms[0].first;
  const std::vector<TermId> query = {present};
  EXPECT_GT(engine.TfIdfScore(query, doc), 0.0);
  const std::vector<TermId> absent = {static_cast<TermId>(4999)};
  EXPECT_DOUBLE_EQ(engine.TfIdfScore(absent, doc), 0.0);
}

TEST(MinervaEngineTest, ThresholdAlgorithmRetrievalIsResultIdentical) {
  EngineFixture fx;
  SearchOptions exhaustive_options;
  exhaustive_options.peers_to_route = 6;
  SearchOptions ta_options = exhaustive_options;
  ta_options.use_threshold_algorithm = true;
  MinervaEngine exhaustive(&fx.corpus, exhaustive_options);
  MinervaEngine with_ta(&fx.corpus, ta_options);
  fx.AddStripedPeers(exhaustive, 8);
  fx.AddStripedPeers(with_ta, 8);

  Random rng(17);
  for (int trial = 0; trial < 4; ++trial) {
    const auto query = fx.corpus.SampleQueryTerms(trial % 4, 3, rng);
    const auto a = exhaustive.ExecuteQuery(query, fx.jxp_scores,
                                           RoutingPolicy::kDocumentFrequency);
    const auto b =
        with_ta.ExecuteQuery(query, fx.jxp_scores, RoutingPolicy::kDocumentFrequency);
    // The per-peer top lists are identical, so the merged candidate sets
    // and rankings match.
    ASSERT_EQ(a.size(), b.size()) << "trial " << trial;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].page, b[i].page) << "trial " << trial << " rank " << i;
      EXPECT_NEAR(a[i].tfidf, b[i].tfidf, 1e-12);
    }
  }
}

TEST(MinervaEngineTest, EmptyQueryYieldsNoResults) {
  EngineFixture fx;
  MinervaEngine engine(&fx.corpus, SearchOptions());
  fx.AddStripedPeers(engine, 4);
  const std::vector<TermId> query;
  EXPECT_TRUE(engine.ExecuteQuery(query, fx.jxp_scores,
                                  RoutingPolicy::kDocumentFrequency)
                  .empty());
}

}  // namespace
}  // namespace search
}  // namespace jxp
