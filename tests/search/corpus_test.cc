#include "search/corpus.h"

#include <gtest/gtest.h>

#include "pagerank/pagerank.h"

namespace jxp {
namespace search {
namespace {

graph::CategorizedGraph SmallCollection() {
  Random rng(11);
  graph::WebGraphParams params;
  params.num_nodes = 600;
  params.num_categories = 3;
  params.mean_out_degree = 5;
  return GenerateWebGraph(params, rng);
}

CorpusOptions SmallCorpusOptions() {
  CorpusOptions options;
  options.vocabulary_size = 4000;
  options.category_vocab_size = 500;
  return options;
}

TEST(CorpusTest, OneDocumentPerPage) {
  const auto collection = SmallCollection();
  const Corpus corpus = Corpus::Generate(collection, SmallCorpusOptions(), 1);
  EXPECT_EQ(corpus.NumDocuments(), 600u);
  for (graph::PageId p = 0; p < 600; p += 97) {
    const Document& doc = corpus.DocumentFor(p);
    EXPECT_EQ(doc.page, p);
    EXPECT_EQ(doc.topic, collection.category[p]);
    EXPECT_FALSE(doc.terms.empty());
    uint32_t total = 0;
    for (const auto& [term, tf] : doc.terms) total += tf;
    EXPECT_EQ(total, doc.length);
  }
}

TEST(CorpusTest, TermsAreSortedUnique) {
  const auto collection = SmallCollection();
  const Corpus corpus = Corpus::Generate(collection, SmallCorpusOptions(), 2);
  const Document& doc = corpus.DocumentFor(0);
  for (size_t i = 1; i < doc.terms.size(); ++i) {
    EXPECT_LT(doc.terms[i - 1].first, doc.terms[i].first);
  }
}

TEST(CorpusTest, DocumentFrequencyConsistent) {
  const auto collection = SmallCollection();
  const Corpus corpus = Corpus::Generate(collection, SmallCorpusOptions(), 3);
  // Recount df for a handful of terms.
  for (TermId term : {0u, 100u, 600u, 2000u}) {
    uint32_t df = 0;
    for (graph::PageId p = 0; p < 600; ++p) {
      const Document& doc = corpus.DocumentFor(p);
      for (const auto& [t, tf] : doc.terms) {
        if (t == term) {
          ++df;
          break;
        }
      }
    }
    EXPECT_EQ(corpus.DocumentFrequency(term), df) << "term " << term;
  }
}

TEST(CorpusTest, DocumentsAreTopicAligned) {
  const auto collection = SmallCollection();
  CorpusOptions options = SmallCorpusOptions();
  options.on_topic_probability = 0.6;
  const Corpus corpus = Corpus::Generate(collection, options, 4);
  // For each document, most category-slice tokens must come from the own
  // category's slice.
  size_t own = 0;
  size_t other = 0;
  for (graph::PageId p = 0; p < 600; ++p) {
    const Document& doc = corpus.DocumentFor(p);
    const size_t slice = options.category_vocab_size;
    for (const auto& [term, tf] : doc.terms) {
      if (term >= 3 * slice) continue;  // Shared vocabulary.
      if (term / slice == doc.topic) {
        own += tf;
      } else {
        other += tf;
      }
    }
  }
  EXPECT_EQ(other, 0u);  // Category tokens only ever come from the own slice.
  EXPECT_GT(own, 0u);
}

TEST(CorpusTest, QueryTermsComeFromCategorySlice) {
  const auto collection = SmallCollection();
  const CorpusOptions options = SmallCorpusOptions();
  const Corpus corpus = Corpus::Generate(collection, options, 5);
  Random rng(6);
  const auto terms = corpus.SampleQueryTerms(1, 3, rng);
  EXPECT_EQ(terms.size(), 3u);
  for (TermId t : terms) {
    EXPECT_GE(t, options.category_vocab_size);
    EXPECT_LT(t, 2 * options.category_vocab_size);
  }
}

TEST(RelevantPagesTest, CoreIsOnTopicAndAuthoritative) {
  const auto collection = SmallCollection();
  const pagerank::PageRankResult pr =
      ComputePageRank(collection.graph, pagerank::PageRankOptions());
  const auto relevant = RelevantPages(collection, pr.scores, 0, 0.05);
  EXPECT_FALSE(relevant.empty());
  for (graph::PageId p : relevant) {
    EXPECT_EQ(collection.category[p], 0u);  // On-topic (incl. the extension).
  }
  // The single most authoritative on-topic page is always relevant.
  graph::PageId best = graph::kInvalidPage;
  double best_score = -1;
  for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
    if (collection.category[p] == 0 && pr.scores[p] > best_score) {
      best_score = pr.scores[p];
      best = p;
    }
  }
  EXPECT_TRUE(relevant.count(best));
}

TEST(RelevantPagesTest, LargerFractionMeansMoreRelevant) {
  const auto collection = SmallCollection();
  const pagerank::PageRankResult pr =
      ComputePageRank(collection.graph, pagerank::PageRankOptions());
  const auto small = RelevantPages(collection, pr.scores, 1, 0.02);
  const auto large = RelevantPages(collection, pr.scores, 1, 0.2);
  EXPECT_GT(large.size(), small.size());
}

}  // namespace
}  // namespace search
}  // namespace jxp
