#include "search/threshold_top_k.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "search/engine.h"

namespace jxp {
namespace search {
namespace {

struct TaFixture {
  TaFixture() {
    Random rng(41);
    graph::WebGraphParams params;
    params.num_nodes = 1200;
    params.num_categories = 4;
    collection = GenerateWebGraph(params, rng);
    CorpusOptions options;
    options.vocabulary_size = 4000;
    options.category_vocab_size = 500;
    corpus = Corpus::Generate(collection, options, 42);
    index = std::make_unique<PeerIndex>(0);
    for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
      index->AddDocument(corpus.DocumentFor(p));
    }
    engine = std::make_unique<MinervaEngine>(&corpus, SearchOptions());
  }

  /// Exhaustive reference: scores every document containing a query term.
  std::vector<std::pair<graph::PageId, double>> BruteForce(
      std::span<const TermId> query, size_t k) const {
    std::unordered_map<graph::PageId, double> scores;
    for (TermId term : query) {
      if (const std::vector<Posting>* postings = index->PostingsFor(term)) {
        for (const Posting& posting : *postings) {
          if (!scores.count(posting.page)) {
            scores[posting.page] =
                engine->TfIdfScore(query, corpus.DocumentFor(posting.page));
          }
        }
      }
    }
    std::vector<std::pair<graph::PageId, double>> ranked(scores.begin(), scores.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (ranked.size() > k) ranked.resize(k);
    return ranked;
  }

  graph::CategorizedGraph collection;
  Corpus corpus;
  std::unique_ptr<PeerIndex> index;
  std::unique_ptr<MinervaEngine> engine;
};

TEST(ThresholdTopKTest, MatchesBruteForce) {
  TaFixture fx;
  Random rng(1);
  for (int trial = 0; trial < 6; ++trial) {
    const auto query = fx.corpus.SampleQueryTerms(trial % 4, 2 + trial % 2, rng);
    const ThresholdTopKResult ta = ThresholdTopK(*fx.index, fx.corpus, query, 10);
    const auto reference = fx.BruteForce(query, 10);
    ASSERT_EQ(ta.results.size(), reference.size()) << "trial " << trial;
    for (size_t i = 0; i < reference.size(); ++i) {
      // Scores must match exactly; page ids may differ only under exact
      // score ties.
      EXPECT_NEAR(ta.results[i].second, reference[i].second, 1e-12)
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST(ThresholdTopKTest, TerminatesEarlyOnSkewedLists) {
  TaFixture fx;
  Random rng(2);
  const auto query = fx.corpus.SampleQueryTerms(1, 3, rng);
  const ThresholdTopKResult ta = ThresholdTopK(*fx.index, fx.corpus, query, 5);
  // Count total postings of the query.
  size_t total_postings = 0;
  for (TermId term : query) {
    if (const auto* postings = fx.index->PostingsFor(term)) {
      total_postings += postings->size();
    }
  }
  ASSERT_GT(total_postings, 50u) << "query too rare for the test to be meaningful";
  EXPECT_TRUE(ta.early_terminated);
  EXPECT_LT(ta.sorted_accesses, total_postings);
}

TEST(ThresholdTopKTest, KLargerThanCandidates) {
  TaFixture fx;
  // A rare term: k larger than its posting list.
  TermId rare = 0;
  size_t best_df = ~size_t{0};
  for (TermId t = 0; t < 4000; ++t) {
    const auto* postings = fx.index->PostingsFor(t);
    if (postings != nullptr && !postings->empty() && postings->size() < best_df) {
      best_df = postings->size();
      rare = t;
    }
  }
  const std::vector<TermId> query = {rare};
  const ThresholdTopKResult ta = ThresholdTopK(*fx.index, fx.corpus, query, 1000);
  EXPECT_EQ(ta.results.size(), best_df);
  EXPECT_FALSE(ta.early_terminated);
}

TEST(ThresholdTopKTest, EmptyQueryAndUnknownTerms) {
  TaFixture fx;
  const std::vector<TermId> empty;
  EXPECT_TRUE(ThresholdTopK(*fx.index, fx.corpus, empty, 5).results.empty());
  const std::vector<TermId> unknown = {static_cast<TermId>(3999)};
  const auto result = ThresholdTopK(*fx.index, fx.corpus, unknown, 5);
  EXPECT_EQ(result.results.size(),
            fx.index->PostingsFor(3999) == nullptr
                ? 0u
                : std::min<size_t>(5, fx.index->PostingsFor(3999)->size()));
}

TEST(ThresholdTopKTest, TieBreakIsPageAscendingUnderTiedScores) {
  TaFixture fx;
  // A single-term query scores matching documents (1 + log tf) * idf, so
  // equal term frequencies tie exactly. Find a term and a k where a tie run
  // straddles the cutoff and require the deterministic (score desc, page asc)
  // order — the regression this guards: heap eviction used to keep an
  // arbitrary member of the tied set.
  for (TermId t = 0; t < 4000; ++t) {
    const auto* postings = fx.index->PostingsFor(t);
    if (postings == nullptr || postings->size() < 8) continue;
    const std::vector<TermId> query = {t};
    const auto all = fx.BruteForce(query, postings->size());
    size_t run_start = 0;
    for (size_t i = 1; i <= all.size(); ++i) {
      if (i == all.size() || all[i].second != all[run_start].second) {
        if (i - run_start >= 2) {
          const size_t k = run_start + (i - run_start) / 2 + 1;
          const ThresholdTopKResult ta = ThresholdTopK(*fx.index, fx.corpus, query, k);
          ASSERT_EQ(ta.results.size(), k);
          for (size_t j = 0; j < k; ++j) {
            EXPECT_EQ(ta.results[j].first, all[j].first) << "rank " << j;
            EXPECT_EQ(ta.results[j].second, all[j].second) << "rank " << j;
          }
          // Within the straddled run the kept pages are the smallest ids.
          for (size_t j = run_start + 1; j < k; ++j) {
            EXPECT_LT(ta.results[j - 1].first, ta.results[j].first);
          }
          return;
        }
        run_start = i;
      }
    }
  }
  FAIL() << "no tied score run found; corpus parameters too diverse";
}

TEST(ThresholdTopKTest, RandomAccessesCountEachDocumentOnce) {
  TaFixture fx;
  Random rng(4);
  const auto query = fx.corpus.SampleQueryTerms(2, 3, rng);
  // k above the candidate count forces full consumption of every list, so
  // every distinct matching document is randomly accessed exactly once.
  std::unordered_set<graph::PageId> distinct;
  for (TermId term : query) {
    if (const auto* postings = fx.index->PostingsFor(term)) {
      for (const Posting& posting : *postings) distinct.insert(posting.page);
    }
  }
  ASSERT_FALSE(distinct.empty());
  const ThresholdTopKResult ta =
      ThresholdTopK(*fx.index, fx.corpus, query, distinct.size() + 1000);
  EXPECT_FALSE(ta.early_terminated);
  EXPECT_EQ(ta.random_accesses, distinct.size());
  // Early-terminating runs can only see fewer documents.
  const ThresholdTopKResult small = ThresholdTopK(*fx.index, fx.corpus, query, 5);
  EXPECT_LE(small.random_accesses, distinct.size());
}

TEST(ThresholdTopKTest, ResultsAreSortedDescending) {
  TaFixture fx;
  Random rng(3);
  const auto query = fx.corpus.SampleQueryTerms(0, 3, rng);
  const ThresholdTopKResult ta = ThresholdTopK(*fx.index, fx.corpus, query, 20);
  for (size_t i = 1; i < ta.results.size(); ++i) {
    EXPECT_GE(ta.results[i - 1].second, ta.results[i].second);
  }
}

}  // namespace
}  // namespace search
}  // namespace jxp
