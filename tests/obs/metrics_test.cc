#include "obs/metrics.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace jxp {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramData;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(HistogramDataTest, BucketBoundariesAreInclusiveUpperBounds) {
  HistogramData h({1.0, 10.0, 100.0});
  // Bucket i covers (bound[i-1], bound[i]]; values on a boundary land in
  // the bucket the boundary closes.
  EXPECT_EQ(h.BucketIndexOf(1.0), 0u);
  EXPECT_EQ(h.BucketIndexOf(1.0000001), 1u);
  EXPECT_EQ(h.BucketIndexOf(10.0), 1u);
  EXPECT_EQ(h.BucketIndexOf(100.0), 2u);
  // Below the first bound, including negatives, is bucket 0.
  EXPECT_EQ(h.BucketIndexOf(0.5), 0u);
  EXPECT_EQ(h.BucketIndexOf(-5.0), 0u);
  // Above the last bound is the overflow bucket.
  EXPECT_EQ(h.BucketIndexOf(100.0001), 3u);

  h.Observe(1.0);
  h.Observe(10.0);
  h.Observe(100.0);
  h.Observe(1000.0);
  h.Observe(-5.0);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 1.0 and -5.0.
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.max(), 1000.0);
}

TEST(HistogramDataTest, BucketlessHistogramStillTracksMoments) {
  HistogramData h;
  EXPECT_EQ(h.num_buckets(), 0u);
  h.Observe(3.0);
  h.Observe(5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.sum(), 8.0);
  EXPECT_EQ(h.mean(), 4.0);
}

TEST(HistogramDataTest, SumIsQuantizedFixedPoint) {
  // 0.5 is exactly representable in units of 2^-20; 1/3 is not and gets
  // rounded to the nearest unit.
  EXPECT_EQ(HistogramData::ToSumUnits(0.5),
            static_cast<int64_t>(HistogramData::kSumScale / 2));
  HistogramData h;
  h.Observe(0.5);
  EXPECT_EQ(h.sum(), 0.5);
  const double third = 1.0 / 3.0;
  HistogramData g;
  g.Observe(third);
  EXPECT_EQ(g.sum(), static_cast<double>(HistogramData::ToSumUnits(third)) /
                         HistogramData::kSumScale);
  EXPECT_NEAR(g.sum(), third, 1.0 / HistogramData::kSumScale);
}

TEST(HistogramDataTest, MergeMatchesSingleAccumulator) {
  const std::vector<double> bounds = {1.0, 4.0, 16.0};
  HistogramData whole(bounds);
  HistogramData part_a(bounds);
  HistogramData part_b(bounds);
  const std::vector<double> samples = {0.25, 1.0, 2.5, 4.0, 7.7, 16.0, 30.0, -1.0};
  for (size_t i = 0; i < samples.size(); ++i) {
    whole.Observe(samples[i]);
    (i % 2 == 0 ? part_a : part_b).Observe(samples[i]);
  }
  part_a.MergeFrom(part_b);
  EXPECT_EQ(part_a.count(), whole.count());
  EXPECT_EQ(part_a.sum(), whole.sum());
  EXPECT_EQ(part_a.min(), whole.min());
  EXPECT_EQ(part_a.max(), whole.max());
  for (size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_EQ(part_a.bucket_count(i), whole.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(part_a.overflow_count(), whole.overflow_count());
}

TEST(HistogramDataTest, ClearKeepsLayout) {
  HistogramData h({2.0, 8.0});
  h.Observe(1.0);
  h.Observe(100.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.num_buckets(), 2u);
  EXPECT_EQ(h.overflow_count(), 0u);
}

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("test.counter");
  c.Increment();
  c.Increment(41);
  Gauge g = registry.GetGauge("test.gauge");
  g.Set(2.5);
  g.Set(7.25);  // Last set wins.
  Histogram h = registry.GetHistogram("test.hist", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "test.counter");
  EXPECT_EQ(snapshot.counters[0].value, 42u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_TRUE(snapshot.gauges[0].set);
  EXPECT_EQ(snapshot.gauges[0].value, 7.25);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].data.count(), 3u);
  EXPECT_EQ(snapshot.histograms[0].data.bucket_count(0), 1u);
  EXPECT_EQ(snapshot.histograms[0].data.bucket_count(1), 1u);
  EXPECT_EQ(snapshot.histograms[0].data.overflow_count(), 1u);
}

TEST(MetricsRegistryTest, ReRegisteringReturnsSameMetric) {
  MetricsRegistry registry;
  Counter a = registry.GetCounter("dup");
  Counter b = registry.GetCounter("dup");
  a.Increment();
  b.Increment();
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].value, 2u);
}

TEST(MetricsRegistryTest, SnapshotSortsByName) {
  MetricsRegistry registry;
  registry.GetCounter("zeta");
  registry.GetCounter("alpha");
  registry.GetCounter("mid");
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha");
  EXPECT_EQ(snapshot.counters[1].name, "mid");
  EXPECT_EQ(snapshot.counters[2].name, "zeta");
}

TEST(MetricsRegistryTest, ResetZeroesEverythingKeepsHandles) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("c");
  Histogram h = registry.GetHistogram("h", {1.0});
  Gauge g = registry.GetGauge("g");
  c.Increment();
  h.Observe(0.5);
  g.Set(9.0);
  registry.Reset();
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters[0].value, 0u);
  EXPECT_EQ(snapshot.histograms[0].data.count(), 0u);
  EXPECT_FALSE(snapshot.gauges[0].set);
  // Handles stay live after Reset.
  c.Increment();
  h.Observe(0.5);
  snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.histograms[0].data.count(), 1u);
}

TEST(MetricsRegistryTest, IsTimingMetricNamingConvention) {
  EXPECT_TRUE(obs::IsTimingMetric("jxp.merge.cpu_ms"));
  EXPECT_TRUE(obs::IsTimingMetric("bench.wall_seconds"));
  EXPECT_TRUE(obs::IsTimingMetric("jxp.qp.serve_ns"));
  EXPECT_FALSE(obs::IsTimingMetric("jxp.meetings"));
  EXPECT_FALSE(obs::IsTimingMetric("jxp.meeting.wire_bytes"));
  // Suffix must be the whole final segment-ending, not a substring.
  EXPECT_FALSE(obs::IsTimingMetric("jxp.qp.terms"));
}

TEST(MetricsRegistryTest, MetricNameViolationAcceptsConformingNames) {
  for (const char* name :
       {"jxp.meetings", "jxp.merge.cpu_ms", "jxp.qp.queries",
        "markov.power_iteration.sweep_seconds", "jxp.qp.serve_ns",
        "a.b.c_d_e", "plain"}) {
    EXPECT_EQ(obs::MetricNameViolation(name), "") << name;
  }
}

TEST(MetricsRegistryTest, MetricNameViolationRejectsBadNames) {
  // One representative per violation class; the exact message wording is
  // not part of the contract, only non-emptiness.
  for (const char* name :
       {"",                        // empty
        "Jxp.meetings",            // uppercase
        "jxp.merge cpu",           // space
        "jxp.merge-cpu",           // hyphen
        ".leading", "trailing.",   // empty dot segment at an edge
        "jxp..merge",              // empty interior segment
        "jxp.merge.cpu_millis",    // near-miss timing suffix
        "jxp.merge.cpu_nanos",     // near-miss timing suffix
        "jxp.merge.cpu_secs",      // near-miss timing suffix
        "jxp.qp.serve_latency",    // near-miss timing suffix
        "jxp.qp.serve_time"}) {    // near-miss timing suffix
    EXPECT_NE(obs::MetricNameViolation(name), "") << "'" << name << "'";
  }
}

// Registry self-check: every metric name the library actually registers
// must conform, so the timing-metric filter in ToJsonLines(false) is
// provably aligned with the naming convention. Exercised here against the
// global registry as left by whatever instrumentation linked into this
// binary; serving_test.cc repeats it after driving the full query path.
TEST(MetricsRegistryTest, GlobalRegistryNamesConformToConvention) {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const auto& c : snapshot.counters) {
    EXPECT_EQ(obs::MetricNameViolation(c.name), "") << c.name;
  }
  for (const auto& g : snapshot.gauges) {
    EXPECT_EQ(obs::MetricNameViolation(g.name), "") << g.name;
  }
  for (const auto& h : snapshot.histograms) {
    EXPECT_EQ(obs::MetricNameViolation(h.name), "") << h.name;
  }
}

// The determinism contract: the same multiset of observations, split across
// any number of pool workers, must merge into a byte-identical snapshot.
TEST(MetricsRegistryTest, SnapshotDeterministicAcrossThreadCounts) {
  const size_t kItems = 4096;
  std::string reference;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    MetricsRegistry registry;
    Counter items = registry.GetCounter("det.items");
    Counter weighted = registry.GetCounter("det.weighted");
    Histogram values = registry.GetHistogram("det.values", {0.25, 0.5, 1.0, 2.0});
    Histogram wide = registry.GetHistogram("det.wide", {100.0, 10000.0});
    ThreadPool pool(threads);
    pool.ParallelFor(0, kItems, 64, [&](size_t i) {
      items.Increment();
      weighted.Increment(i % 7);
      // Irrational-ish spread of doubles; identical multiset every run.
      values.Observe(std::fmod(static_cast<double>(i) * 0.6180339887, 2.5));
      wide.Observe(static_cast<double>((i * i) % 30011));
    });
    const std::string lines = registry.Snapshot().ToJsonLines(/*include_timing=*/false);
    if (reference.empty()) {
      reference = lines;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(lines, reference) << "snapshot differs at " << threads << " threads";
    }
  }
}

// Registration from pool workers racing with recording must be safe (the
// TSan CI job runs this).
TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry registry;
  ThreadPool pool(8);
  pool.ParallelFor(0, 512, 1, [&](size_t i) {
    Counter c = registry.GetCounter("concurrent.counter" + std::to_string(i % 16));
    c.Increment();
    Histogram h =
        registry.GetHistogram("concurrent.hist" + std::to_string(i % 16), {1.0, 2.0});
    h.Observe(static_cast<double>(i % 3));
  });
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 16u);
  uint64_t total = 0;
  for (const auto& c : snapshot.counters) total += c.value;
  EXPECT_EQ(total, 512u);
  uint64_t observations = 0;
  for (const auto& h : snapshot.histograms) observations += h.data.count();
  EXPECT_EQ(observations, 512u);
}

TEST(MetricsSnapshotTest, ToJsonLinesFiltersTimingMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("a.count").Increment();
  registry.GetHistogram("a.cpu_ms", {1.0}).Observe(0.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string with_timing = snapshot.ToJsonLines(true);
  const std::string without_timing = snapshot.ToJsonLines(false);
  EXPECT_NE(with_timing.find("a.cpu_ms"), std::string::npos);
  EXPECT_EQ(without_timing.find("a.cpu_ms"), std::string::npos);
  EXPECT_NE(without_timing.find("a.count"), std::string::npos);
}

}  // namespace
}  // namespace jxp
