#ifndef JXP_TESTS_OBS_JSON_PARSE_H_
#define JXP_TESTS_OBS_JSON_PARSE_H_

// A minimal recursive-descent JSON parser, just enough for the telemetry
// tests to validate the JSON-lines stream the obs layer emits. Test-only:
// keeps object keys in insertion order and parses every number as double.

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jxp {
namespace obs_test {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  /// Convenience: the numeric value of member `key` (0 when absent).
  double Num(std::string_view key) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_number() ? v->number : 0;
  }
  /// Convenience: the string value of member `key` ("" when absent).
  std::string Str(std::string_view key) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_string() ? v->string : "";
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// Parses one JSON value; false on any syntax error or trailing garbage.
  bool Parse(JsonValue& out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue& out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return ParseString(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return ConsumeWord("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return ConsumeWord("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return ConsumeWord("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(key)) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.array.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string& out) {
    if (!Consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The writer only emits \u00XX control-character escapes; encode
          // the general case as UTF-8 anyway for robustness.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated string.
  }

  bool ParseNumber(JsonValue& out) {
    out.type = JsonValue::Type::kNumber;
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    out.number = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline bool ParseJson(std::string_view text, JsonValue& out) {
  return JsonParser(text).Parse(out);
}

}  // namespace obs_test
}  // namespace jxp

#endif  // JXP_TESTS_OBS_JSON_PARSE_H_
