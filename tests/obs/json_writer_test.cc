#include "obs/json_writer.h"

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "json_parse.h"

namespace jxp {
namespace {

using obs::JsonWriter;
using obs_test::JsonValue;
using obs_test::ParseJson;

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter writer;
  EXPECT_EQ(writer.TakeLine(), "{}");
}

TEST(JsonWriterTest, KeysKeepInsertionOrder) {
  JsonWriter writer;
  writer.Field("zebra", 1).Field("apple", 2).Field("mango", 3);
  EXPECT_EQ(writer.TakeLine(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(JsonWriterTest, ScalarTypes) {
  JsonWriter writer;
  writer.Field("s", "text")
      .Field("d", 2.5)
      .Field("i", int64_t{-7})
      .Field("u", uint64_t{18446744073709551615ull})
      .Field("b", true)
      .FieldRawJson("raw", "null");
  EXPECT_EQ(writer.TakeLine(),
            "{\"s\":\"text\",\"d\":2.5,\"i\":-7,\"u\":18446744073709551615,"
            "\"b\":true,\"raw\":null}");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  JsonWriter writer;
  writer.Field("k", "a\"b\\c\nd\te\x01" "f");
  const std::string line = writer.TakeLine();
  EXPECT_EQ(line, "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(line, parsed));
  EXPECT_EQ(parsed.Str("k"), "a\"b\\c\nd\te\x01" "f");
}

TEST(JsonWriterTest, DoublesRoundTrip) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 45133.8}) {
    JsonWriter writer;
    writer.Field("v", v);
    JsonValue parsed;
    ASSERT_TRUE(ParseJson(writer.TakeLine(), parsed));
    EXPECT_EQ(parsed.Num("v"), v);
  }
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter writer;
  writer.Field("nan", std::nan(""))
      .Field("inf", std::numeric_limits<double>::infinity());
  EXPECT_EQ(writer.TakeLine(), "{\"nan\":null,\"inf\":null}");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter writer;
  writer.Field("name", "h");
  writer.BeginArray("buckets");
  writer.BeginArrayObject().Field("le", 10.0).Field("count", 3).End();
  writer.BeginArrayObject().Field("le", "+Inf").Field("count", 1).End();
  writer.End();
  writer.BeginObject("meta").Field("kind", "histogram").End();
  const std::string line = writer.TakeLine();
  EXPECT_EQ(line,
            "{\"name\":\"h\",\"buckets\":[{\"le\":10,\"count\":3},"
            "{\"le\":\"+Inf\",\"count\":1}],\"meta\":{\"kind\":\"histogram\"}}");
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(line, parsed));
  const JsonValue* buckets = parsed.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->array.size(), 2u);
  EXPECT_EQ(buckets->array[0].Num("count"), 3);
}

TEST(JsonWriterTest, TakeLineClosesOpenScopesAndResets) {
  JsonWriter writer;
  writer.BeginObject("a").BeginArray("b").Element(1.0);
  EXPECT_EQ(writer.TakeLine(), "{\"a\":{\"b\":[1]}}");
  writer.Field("fresh", 1);
  EXPECT_EQ(writer.TakeLine(), "{\"fresh\":1}");
}

TEST(JsonWriterTest, ScalarArrayElements) {
  JsonWriter writer;
  writer.BeginArray("xs").Element(1.5).Element("two").End();
  EXPECT_EQ(writer.TakeLine(), "{\"xs\":[1.5,\"two\"]}");
}

TEST(JsonWriterTest, EscapesEveryControlCharacter) {
  // All of 0x00..0x1F must come out escaped (short forms for the common
  // ones, \u00XX otherwise) and parse back to the original byte. Trace
  // lines carry query terms and stage names; a stray control byte must
  // never produce an unparseable JSONL record.
  for (int c = 0; c < 0x20; ++c) {
    JsonWriter writer;
    const std::string value = std::string("a") + static_cast<char>(c) + "b";
    writer.Field("k", value);
    const std::string line = writer.TakeLine();
    for (const char byte : line) {
      EXPECT_GE(static_cast<unsigned char>(byte), 0x20u)
          << "raw control byte " << c << " leaked into: " << line;
    }
    JsonValue parsed;
    ASSERT_TRUE(ParseJson(line, parsed)) << "c=" << c << " line=" << line;
    EXPECT_EQ(parsed.Str("k"), value) << "c=" << c;
  }
  // DEL (0x7F) and high bytes are legal unescaped JSON; spot-check they
  // pass through untouched.
  JsonWriter writer;
  writer.Field("k", "\x7f");
  EXPECT_EQ(writer.TakeLine(), "{\"k\":\"\x7f\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesInNestedArraysBecomeNull) {
  // The top-level Field() case is covered above; Element() inside nested
  // scopes shares the number formatter and must apply the same null
  // mapping (a bare `nan` token would corrupt the whole line).
  JsonWriter writer;
  writer.BeginArray("xs")
      .Element(std::nan(""))
      .Element(1.0)
      .Element(-std::numeric_limits<double>::infinity())
      .End();
  writer.BeginObject("nested");
  writer.BeginArray("ys").Element(std::numeric_limits<double>::infinity()).End();
  writer.Field("f", std::nan(""));
  writer.End();
  const std::string line = writer.TakeLine();
  EXPECT_EQ(line,
            "{\"xs\":[null,1,null],\"nested\":{\"ys\":[null],\"f\":null}}");
  JsonValue parsed;
  ASSERT_TRUE(ParseJson(line, parsed));
  const JsonValue* xs = parsed.Find("xs");
  ASSERT_NE(xs, nullptr);
  ASSERT_EQ(xs->array.size(), 3u);
}

}  // namespace
}  // namespace jxp
