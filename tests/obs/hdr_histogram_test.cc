#include "obs/hdr_histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "obs/json_writer.h"
#include "obs/latency_recorder.h"
#include "obs/telemetry.h"

namespace jxp {
namespace {

using obs::HdrHistogram;
using obs::LatencyRecorder;
using obs::LatencyStage;

TEST(HdrHistogramTest, EmptyHistogram) {
  HdrHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.ValueAtPercentile(50), 0u);
}

TEST(HdrHistogramTest, ExactBelowSubBucketCount) {
  // Values below 256 get one slot each, so every percentile of a
  // small-value multiset is exact.
  HdrHistogram h;
  for (uint64_t v = 0; v < HdrHistogram::kSubBucketCount; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 256u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 255u);
  // ceil(p/100 * 256)-th smallest of {0..255} is ceil(p/100*256) - 1.
  for (const double p : {1.0, 10.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
    const uint64_t rank =
        static_cast<uint64_t>(std::ceil(p / 100.0 * 256.0));
    EXPECT_EQ(h.ValueAtPercentile(p), rank - 1) << "p=" << p;
  }
}

TEST(HdrHistogramTest, SlotArithmeticInvariants) {
  // Every probed value maps to a slot whose upper bound is >= the value and
  // whose relative width is at most 2^-7 of the value; slot indexes are
  // monotone in the value.
  uint64_t previous_slot = 0;
  for (uint64_t value :
       {uint64_t{0}, uint64_t{1}, uint64_t{255}, uint64_t{256}, uint64_t{257},
        uint64_t{511}, uint64_t{512}, uint64_t{1000}, uint64_t{123456},
        uint64_t{1} << 32, (uint64_t{1} << 62) + 12345,
        ~uint64_t{0} - 1, ~uint64_t{0}}) {
    const size_t slot = HdrHistogram::SlotIndexOf(value);
    ASSERT_LT(slot, HdrHistogram::kNumSlots);
    const uint64_t upper = HdrHistogram::SlotUpperBound(slot);
    EXPECT_GE(upper, value);
    if (slot > 0) {
      EXPECT_LT(HdrHistogram::SlotUpperBound(slot - 1), value);
    }
    if (value >= HdrHistogram::kSubBucketCount) {
      // Width of the covering slot, relative to the value it covers.
      const uint64_t lower = HdrHistogram::SlotUpperBound(slot - 1) + 1;
      const double rel_width = static_cast<double>(upper - lower + 1) /
                               static_cast<double>(value);
      EXPECT_LE(rel_width, 1.0 / 128.0 + 1e-12) << "value=" << value;
    } else {
      EXPECT_EQ(upper, value);  // exact range
    }
    EXPECT_GE(slot, previous_slot);
    previous_slot = slot;
  }
}

TEST(HdrHistogramTest, QuantileErrorBounds) {
  // Documented contract: q* <= ValueAtPercentile(p) <= q* * (1 + 2^-7),
  // where q* is the true percentile of the recorded multiset. Checked
  // against a sorted copy over a wide log-uniform sample.
  Random rng(20260808);
  std::vector<uint64_t> samples;
  HdrHistogram h;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over [1, 2^40): exercises many power-of-two ranges.
    const int bits = 1 + static_cast<int>(rng.NextDouble() * 39.0);
    const uint64_t value = (uint64_t{1} << bits) |
                           (rng.NextUint64() & ((uint64_t{1} << bits) - 1));
    samples.push_back(value);
    h.Record(value);
  }
  std::sort(samples.begin(), samples.end());
  for (const double p : {0.1, 1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 99.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size())));
    const uint64_t truth = samples[std::max<size_t>(rank, 1) - 1];
    const uint64_t got = h.ValueAtPercentile(p);
    EXPECT_GE(got, truth) << "p=" << p;
    EXPECT_LE(static_cast<double>(got),
              static_cast<double>(truth) * (1.0 + 1.0 / 128.0)) << "p=" << p;
  }
  EXPECT_EQ(h.ValueAtPercentile(100), samples.back());
  EXPECT_EQ(h.ValueAtPercentile(0), samples.front());
  EXPECT_EQ(h.ValueAtPercentile(-5), samples.front());
  EXPECT_EQ(h.ValueAtPercentile(250), samples.back());
}

TEST(HdrHistogramTest, PercentileClampedToRecordedMax) {
  // The slot upper bound can exceed every recorded value; the clamp keeps
  // reported percentiles inside the observed range.
  HdrHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.ValueAtPercentile(50), 1000u);
  EXPECT_EQ(h.ValueAtPercentile(99.9), 1000u);
}

TEST(HdrHistogramTest, RecordManyMatchesRepeatedRecord) {
  HdrHistogram a;
  HdrHistogram b;
  a.RecordMany(5000, 1000);
  for (int i = 0; i < 1000; ++i) b.Record(5000);
  EXPECT_TRUE(a == b);
}

TEST(HdrHistogramTest, MergeIsOrderIndependent) {
  // The same multiset recorded whole, or split into shards merged in any
  // order, yields bit-identical state — the property that makes per-worker
  // recording + MergeFrom equal to a single global histogram.
  Random rng(424242);
  std::vector<uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(rng.NextUint64() >> rng.NextBounded(50));
  }

  HdrHistogram whole;
  for (const uint64_t v : values) whole.Record(v);

  constexpr size_t kShards = 7;
  std::vector<HdrHistogram> shards(kShards);
  for (size_t i = 0; i < values.size(); ++i) shards[i % kShards].Record(values[i]);

  HdrHistogram forward;
  for (size_t s = 0; s < kShards; ++s) forward.MergeFrom(shards[s]);
  HdrHistogram backward;
  for (size_t s = kShards; s-- > 0;) backward.MergeFrom(shards[s]);

  EXPECT_TRUE(forward == whole);
  EXPECT_TRUE(backward == whole);
  EXPECT_EQ(forward.ValueAtPercentile(99), whole.ValueAtPercentile(99));
}

TEST(HdrHistogramTest, CrossThreadMergeBitIdentity) {
  // Per-thread recording then merging equals serial recording bit for bit,
  // regardless of scheduling. Runs under TSan in CI.
  Random rng(777);
  std::vector<uint64_t> values;
  for (int i = 0; i < 8000; ++i) values.push_back(1 + rng.NextBounded(1000000));

  HdrHistogram serial;
  for (const uint64_t v : values) serial.Record(v);

  constexpr size_t kThreads = 4;
  std::vector<HdrHistogram> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < values.size(); i += kThreads) {
        per_thread[t].Record(values[i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  HdrHistogram merged;
  for (const HdrHistogram& h : per_thread) merged.MergeFrom(h);
  EXPECT_TRUE(merged == serial);
}

TEST(HdrHistogramTest, ClearDropsEverything) {
  HdrHistogram h;
  h.Record(123);
  h.Record(456789);
  h.Clear();
  EXPECT_TRUE(h == HdrHistogram());
}

TEST(LatencyRecorderTest, StageNamesAreStable) {
  EXPECT_STREQ(obs::LatencyStageName(LatencyStage::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(obs::LatencyStageName(LatencyStage::kPriming), "priming");
  EXPECT_STREQ(obs::LatencyStageName(LatencyStage::kDecode), "decode");
  EXPECT_STREQ(obs::LatencyStageName(LatencyStage::kScoring), "scoring");
  EXPECT_STREQ(obs::LatencyStageName(LatencyStage::kHeap), "heap");
  EXPECT_STREQ(obs::LatencyStageName(LatencyStage::kFanIn), "fan_in");
  EXPECT_STREQ(obs::LatencyStageName(LatencyStage::kTotal), "total");
}

TEST(LatencyRecorderTest, RecordsPerStage) {
  LatencyRecorder recorder;
  recorder.Record(LatencyStage::kDecode, 1000);
  recorder.Record(LatencyStage::kDecode, 2000);
  recorder.Record(LatencyStage::kTotal, 5000);
  EXPECT_EQ(recorder.TotalCount(), 3u);
  EXPECT_EQ(recorder.StageSnapshot(LatencyStage::kDecode).count(), 2u);
  EXPECT_EQ(recorder.StageSnapshot(LatencyStage::kTotal).max(), 5000u);
  EXPECT_EQ(recorder.StageSnapshot(LatencyStage::kHeap).count(), 0u);
  recorder.Clear();
  EXPECT_EQ(recorder.TotalCount(), 0u);
}

TEST(LatencyRecorderTest, GatedOnTelemetrySwitch) {
  obs::ScopedEnable off(false);
  LatencyRecorder recorder;
  recorder.Record(LatencyStage::kTotal, 1234);
  EXPECT_EQ(recorder.TotalCount(), 0u);
}

TEST(LatencyRecorderTest, ConcurrentRecordingMatchesSerial) {
  // The mutex-guarded recorder accumulates integer counts, so any
  // interleaving of the same samples yields bit-identical stage
  // histograms. Runs under TSan in CI.
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 2000;
  LatencyRecorder concurrent;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        concurrent.Record(static_cast<LatencyStage>(i % obs::kNumLatencyStages),
                          t * kPerThread + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LatencyRecorder serial;
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      serial.Record(static_cast<LatencyStage>(i % obs::kNumLatencyStages),
                    t * kPerThread + i);
    }
  }
  for (size_t s = 0; s < obs::kNumLatencyStages; ++s) {
    const auto stage = static_cast<LatencyStage>(s);
    EXPECT_TRUE(concurrent.StageSnapshot(stage) == serial.StageSnapshot(stage))
        << "stage " << obs::LatencyStageName(stage);
  }
}

TEST(LatencyRecorderTest, MergeFromAccumulates) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.Record(LatencyStage::kScoring, 100);
  b.Record(LatencyStage::kScoring, 200);
  b.Record(LatencyStage::kHeap, 300);
  a.MergeFrom(b);
  EXPECT_EQ(a.StageSnapshot(LatencyStage::kScoring).count(), 2u);
  EXPECT_EQ(a.StageSnapshot(LatencyStage::kHeap).count(), 1u);
  EXPECT_EQ(b.TotalCount(), 2u);  // untouched
}

TEST(LatencyRecorderTest, WriteJsonFieldsSkipsEmptyStagesAndUsesNsSuffix) {
  LatencyRecorder recorder;
  recorder.Record(LatencyStage::kDecode, 1000);
  recorder.Record(LatencyStage::kDecode, 3000);
  obs::JsonWriter writer;
  recorder.WriteJsonFields(writer, "stage_");
  const std::string line = writer.TakeLine();
  EXPECT_NE(line.find("\"stage_decode_count\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"stage_decode_p99_ns\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"stage_decode_max_ns\":3000"), std::string::npos) << line;
  // Empty stages are skipped entirely.
  EXPECT_EQ(line.find("stage_heap"), std::string::npos) << line;
  // Same state, same bytes.
  obs::JsonWriter again;
  recorder.WriteJsonFields(again, "stage_");
  EXPECT_EQ(again.TakeLine(), line);
}

}  // namespace
}  // namespace jxp
