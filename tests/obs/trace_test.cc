#include "obs/trace.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "json_parse.h"

namespace jxp {
namespace {

using obs::EmitEvent;
using obs::ScopedTraceSink;
using obs::StringTraceSink;
using obs::TraceSpan;
using obs_test::JsonValue;
using obs_test::ParseJson;

JsonValue ParseLine(const std::string& line) {
  JsonValue value;
  EXPECT_TRUE(ParseJson(line, value)) << "invalid JSON: " << line;
  return value;
}

const JsonValue* FindByName(const std::vector<JsonValue>& records,
                            const std::string& name) {
  for (const JsonValue& r : records) {
    if (r.Str("name") == name) return &r;
  }
  return nullptr;
}

TEST(TraceSpanTest, NestingRecordsParentAndDepth) {
  StringTraceSink sink;
  ScopedTraceSink installed(&sink);
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
  }
  const std::vector<std::string> lines = sink.TakeLines();
  ASSERT_EQ(lines.size(), 2u);
  std::vector<JsonValue> records;
  for (const std::string& line : lines) records.push_back(ParseLine(line));
  // Spans emit at destruction: inner first.
  const JsonValue* outer = FindByName(records, "outer");
  const JsonValue* inner = FindByName(records, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->Str("type"), "span");
  EXPECT_EQ(outer->Num("depth"), 0);
  EXPECT_EQ(outer->Num("parent"), 0);
  EXPECT_EQ(inner->Num("depth"), 1);
  EXPECT_EQ(inner->Num("parent"), outer->Num("id"));
  EXPECT_NE(inner->Num("id"), outer->Num("id"));
  // Timings are present and sane.
  EXPECT_GE(outer->Num("wall_ms"), 0.0);
  EXPECT_GE(outer->Num("cpu_ms"), 0.0);
  EXPECT_GE(outer->Num("wall_ms"), inner->Num("wall_ms"));
}

TEST(TraceSpanTest, AttributesRoundTripThroughJson) {
  StringTraceSink sink;
  ScopedTraceSink installed(&sink);
  {
    TraceSpan span("attrs");
    ASSERT_TRUE(span.active());
    span.AddAttr("text", "with \"quotes\" and\nnewline");
    span.AddAttr("ratio", 0.375);
    span.AddAttr("count", uint64_t{42});
    span.AddAttr("delta", int64_t{-3});
    span.AddAttr("ok", true);
  }
  const std::vector<std::string> lines = sink.TakeLines();
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue record = ParseLine(lines[0]);
  const JsonValue* attrs = record.Find("attrs");
  ASSERT_NE(attrs, nullptr);
  EXPECT_EQ(attrs->Str("text"), "with \"quotes\" and\nnewline");
  EXPECT_EQ(attrs->Num("ratio"), 0.375);
  EXPECT_EQ(attrs->Num("count"), 42);
  EXPECT_EQ(attrs->Num("delta"), -3);
  const JsonValue* ok = attrs->Find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->boolean);
}

TEST(TraceSpanTest, InactiveWithoutSink) {
  {
    TraceSpan span("unsunk");
    EXPECT_FALSE(span.active());
    span.AddAttr("ignored", 1.0);  // Must be a no-op, not a crash.
  }
  // Installing a sink afterwards must not receive anything retroactively.
  StringTraceSink sink;
  ScopedTraceSink installed(&sink);
  EXPECT_TRUE(sink.TakeLines().empty());
}

TEST(TraceSpanTest, InactiveWhenDisabled) {
  StringTraceSink sink;
  ScopedTraceSink installed(&sink);
  {
    obs::ScopedEnable disabled(false);
    TraceSpan span("disabled");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(sink.TakeLines().empty());
}

TEST(TraceEventTest, EmitsNameAndFields) {
  StringTraceSink sink;
  ScopedTraceSink installed(&sink);
  EmitEvent("checkpoint", [](obs::JsonWriter& writer) {
    writer.Field("meetings", 120).Field("footrule", 0.25);
  });
  const std::vector<std::string> lines = sink.TakeLines();
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue record = ParseLine(lines[0]);
  EXPECT_EQ(record.Str("type"), "event");
  EXPECT_EQ(record.Str("name"), "checkpoint");
  EXPECT_EQ(record.Num("meetings"), 120);
  EXPECT_EQ(record.Num("footrule"), 0.25);
}

TEST(TraceEventTest, FillNotInvokedWithoutSink) {
  bool invoked = false;
  EmitEvent("dropped", [&](obs::JsonWriter&) { invoked = true; });
  EXPECT_FALSE(invoked);
}

TEST(TraceSinkTest, InstallReturnsPrevious) {
  StringTraceSink a;
  StringTraceSink b;
  obs::TraceSink* original = obs::InstallTraceSink(&a);
  EXPECT_EQ(obs::InstallTraceSink(&b), &a);
  EXPECT_EQ(obs::CurrentTraceSink(), &b);
  obs::InstallTraceSink(original);
}

}  // namespace
}  // namespace jxp
