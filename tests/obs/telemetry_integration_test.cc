// End-to-end validation of the telemetry stream against a real JXP
// simulation: meeting and power-iteration spans, convergence events, the
// metrics snapshot, and the determinism contracts (telemetry on vs off,
// and across thread counts).

#include <string>
#include <vector>

#include "core/simulation.h"
#include "crawler/partitioner.h"
#include "datasets/collections.h"
#include "gtest/gtest.h"
#include "json_parse.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jxp {
namespace {

using obs_test::JsonValue;
using obs_test::ParseJson;

datasets::Collection SmallCollection() { return datasets::MakeAmazonLike(0.02, 11); }

std::vector<std::vector<graph::PageId>> SmallPartition(
    const datasets::Collection& collection) {
  Random rng(13);
  crawler::PartitionOptions options;
  options.peers_per_category = 1;
  options.crawler.max_pages =
      std::max<size_t>(20, collection.data.graph.NumNodes() * 3 /
                               (options.peers_per_category *
                                collection.data.num_categories));
  options.crawler.max_depth = 8;
  return CrawlBasedPartition(collection.data, options, rng);
}

core::SimulationConfig SmallConfig() {
  core::SimulationConfig config;
  config.jxp.damping = 0.85;
  config.jxp.pr_tolerance = 1e-10;
  config.jxp.pr_max_iterations = 200;
  config.seed = 5;
  config.eval_top_k = 50;
  return config;
}

uint64_t SnapshotCounter(const obs::MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

TEST(TelemetryIntegrationTest, StreamContainsSpansEventsAndValidJson) {
  const datasets::Collection collection = SmallCollection();
  const auto fragments = SmallPartition(collection);

  obs::MetricsRegistry::Global().Reset();
  obs::StringTraceSink sink;
  obs::ScopedTraceSink installed(&sink);

  core::SimulationConfig config = SmallConfig();
  config.monitor_every = 10;
  core::JxpSimulation sim(collection.data.graph, fragments, config);
  sim.RunMeetings(30);

  // Every line must be a complete JSON object.
  size_t meeting_spans = 0;
  size_t process_spans = 0;
  size_t power_spans = 0;
  size_t convergence_events = 0;
  for (const std::string& line : sink.TakeLines()) {
    JsonValue record;
    ASSERT_TRUE(ParseJson(line, record)) << "invalid JSON line: " << line;
    const std::string type = record.Str("type");
    ASSERT_TRUE(type == "span" || type == "event") << line;
    const std::string name = record.Str("name");
    if (type == "span") {
      EXPECT_GE(record.Num("wall_ms"), 0.0) << line;
      EXPECT_GE(record.Num("cpu_ms"), 0.0) << line;
      ASSERT_NE(record.Find("id"), nullptr);
    }
    if (name == "jxp.meeting") {
      ++meeting_spans;
      const JsonValue* attrs = record.Find("attrs");
      ASSERT_NE(attrs, nullptr) << line;
      EXPECT_GT(attrs->Num("wire_bytes"), 0.0) << line;
      ASSERT_NE(attrs->Find("cpu_ms_initiator"), nullptr);
      ASSERT_NE(attrs->Find("pr_iterations"), nullptr);
    } else if (name == "jxp.process_meeting") {
      ++process_spans;
      // Nested under the meeting span, on the same thread.
      EXPECT_EQ(record.Num("depth"), 1) << line;
      EXPECT_GT(record.Num("parent"), 0.0) << line;
    } else if (name == "markov.power_iteration") {
      ++power_spans;
      const JsonValue* attrs = record.Find("attrs");
      ASSERT_NE(attrs, nullptr) << line;
      EXPECT_GE(attrs->Num("iterations"), 1.0) << line;
      ASSERT_NE(attrs->Find("residual"), nullptr);
    } else if (type == "event" && name == "convergence") {
      ++convergence_events;
      ASSERT_NE(record.Find("meetings"), nullptr);
      ASSERT_NE(record.Find("footrule"), nullptr);
      ASSERT_NE(record.Find("linear_error"), nullptr);
      ASSERT_NE(record.Find("mean_world_score"), nullptr);
    }
  }
  EXPECT_EQ(meeting_spans, 30u);
  EXPECT_EQ(process_spans, 60u);  // Both sides of every meeting.
  EXPECT_GT(power_spans, 0u);
  // monitor_every=10 over 30 meetings: the meetings=0 baseline + 3 samples.
  EXPECT_EQ(convergence_events, 4u);
  EXPECT_EQ(sim.convergence_series().size(), 4u);
  EXPECT_EQ(sim.convergence_series().front().meetings, 0u);
  EXPECT_EQ(sim.convergence_series().back().meetings, 30u);
  EXPECT_GT(sim.convergence_series().back().total_traffic_bytes, 0.0);

  // The registry agrees with the stream.
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(SnapshotCounter(snapshot, "jxp.meetings"), 30u);
  EXPECT_EQ(SnapshotCounter(snapshot, "jxp.merges"), 60u);
  EXPECT_GT(SnapshotCounter(snapshot, "markov.power_iteration.runs"), 0u);
  EXPECT_GT(SnapshotCounter(snapshot, "markov.power_iteration.iterations_total"),
            SnapshotCounter(snapshot, "markov.power_iteration.runs"));
  EXPECT_GT(SnapshotCounter(snapshot, "jxp.extended_cache.hits"), 0u);
}

TEST(TelemetryIntegrationTest, ResultsBitIdenticalWithTelemetryOnAndOff) {
  const datasets::Collection collection = SmallCollection();
  const auto fragments = SmallPartition(collection);

  const auto run = [&](bool telemetry) {
    obs::ScopedEnable enable(telemetry);
    obs::StringTraceSink sink;
    obs::ScopedTraceSink installed(telemetry ? &sink : nullptr);
    core::SimulationConfig config = SmallConfig();
    config.monitor_every = telemetry ? 10 : 0;
    core::JxpSimulation sim(collection.data.graph, fragments, config);
    sim.RunMeetings(20);
    std::vector<std::vector<double>> scores;
    for (const core::JxpPeer& peer : sim.peers()) scores.push_back(peer.local_scores());
    return scores;
  };

  const auto with_telemetry = run(true);
  const auto without_telemetry = run(false);
  ASSERT_EQ(with_telemetry.size(), without_telemetry.size());
  for (size_t p = 0; p < with_telemetry.size(); ++p) {
    ASSERT_EQ(with_telemetry[p].size(), without_telemetry[p].size());
    for (size_t i = 0; i < with_telemetry[p].size(); ++i) {
      // Bitwise comparison: telemetry must not perturb the algorithm.
      EXPECT_EQ(with_telemetry[p][i], without_telemetry[p][i])
          << "peer " << p << " page " << i;
    }
  }
}

TEST(TelemetryIntegrationTest, SnapshotAndScoresBitIdenticalAcrossThreadCounts) {
  const datasets::Collection collection = SmallCollection();
  const auto fragments = SmallPartition(collection);

  std::string reference_metrics;
  std::vector<std::vector<double>> reference_scores;
  for (const size_t threads : {1u, 2u, 4u}) {
    obs::MetricsRegistry::Global().Reset();
    core::SimulationConfig config = SmallConfig();
    config.num_threads = threads;
    config.monitor_every = 8;
    core::JxpSimulation sim(collection.data.graph, fragments, config);
    sim.RunMeetingsParallel(24);

    // Timing metrics are the only run-dependent ones; everything else must
    // be byte-identical at every thread count.
    const std::string metrics =
        obs::MetricsRegistry::Global().Snapshot().ToJsonLines(/*include_timing=*/false);
    std::vector<std::vector<double>> scores;
    for (const core::JxpPeer& peer : sim.peers()) scores.push_back(peer.local_scores());

    if (reference_metrics.empty()) {
      reference_metrics = metrics;
      reference_scores = scores;
      ASSERT_NE(reference_metrics.find("jxp.meetings"), std::string::npos);
    } else {
      EXPECT_EQ(metrics, reference_metrics) << "metrics differ at " << threads
                                            << " threads";
      ASSERT_EQ(scores.size(), reference_scores.size());
      for (size_t p = 0; p < scores.size(); ++p) {
        EXPECT_EQ(scores[p], reference_scores[p]) << "peer " << p;
      }
    }
    // The convergence monitor sampled the same meeting counts regardless of
    // thread count (the round structure is a pure function of the seed).
    ASSERT_FALSE(sim.convergence_series().empty());
    EXPECT_EQ(sim.convergence_series().front().meetings, 0u);
  }
}

}  // namespace
}  // namespace jxp
