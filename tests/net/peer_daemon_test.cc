#include "net/peer_daemon.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/jxp_peer.h"
#include "core/state_io.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "net/chaos_proxy.h"
#include "net/control_client.h"
#include "net/event_loop.h"

namespace jxp {
namespace net {
namespace {

using core::JxpOptions;
using core::JxpPeer;
using core::MeetingWireMode;

JxpOptions NetOptions() {
  JxpOptions options;
  // kMeasured is the mode the networked runtime mirrors: the in-process
  // MeetMeasured path and the daemon's encode-then-apply exchange must be
  // bit-identical.
  options.wire_mode = MeetingWireMode::kMeasured;
  return options;
}

/// 0 -> {1,2}, 1 -> {2}, 2 -> {0}, 3 -> {2}, 4 -> {0}, 5 dangling.
graph::Graph SmallGraph() {
  graph::GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 2);
  builder.AddEdge(4, 0);
  return builder.Build();
}

JxpPeer MakePeerA(const graph::Graph& g) {
  return JxpPeer(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), NetOptions());
}

JxpPeer MakePeerB(const graph::Graph& g) {
  return JxpPeer(1, graph::Subgraph::Induce(g, {2, 3, 4, 5}), g.NumNodes(),
                 NetOptions());
}

/// One daemon + its event loop running on a background thread.
struct Harness {
  Harness(JxpPeer peer, PeerDaemonOptions options)
      : daemon(std::make_unique<JxpPeer>(std::move(peer)), std::move(options)) {
    const Status status = daemon.Start(&loop);
    EXPECT_TRUE(status.ok()) << status.ToString();
    thread = std::thread([this] { loop.Run(); });
  }
  ~Harness() { StopAndJoin(); }

  /// Stops the loop and joins; after this, daemon state is safe to inspect
  /// from the test thread.
  void StopAndJoin() {
    if (thread.joinable()) {
      loop.Stop();
      thread.join();
    }
  }

  EventLoop loop;
  PeerDaemon daemon;
  std::thread thread;
};

/// Lets the daemon threads drain in-flight events (EOF deliveries, blob
/// salvage) that are not ordered with the control round trip.
void Settle() { std::this_thread::sleep_for(std::chrono::milliseconds(100)); }

/// Asserts that the scores a daemon reports over the wire are bit-identical
/// to the oracle peer's state.
void ExpectScoresMatch(const ScoresReplyMessage& got, const JxpPeer& oracle) {
  const graph::Subgraph& fragment = oracle.fragment();
  const std::vector<double>& scores = oracle.local_scores();
  ASSERT_EQ(got.entries.size(), scores.size());
  std::unordered_map<uint32_t, double> by_page;
  for (const ScoreEntry& entry : got.entries) by_page[entry.page] = entry.score;
  for (size_t i = 0; i < scores.size(); ++i) {
    const uint32_t page = fragment.GlobalId(static_cast<graph::Subgraph::LocalIndex>(i));
    ASSERT_TRUE(by_page.count(page)) << "missing page " << page;
    EXPECT_EQ(by_page[page], scores[i]) << "score of page " << page;
  }
  EXPECT_EQ(got.world_score, oracle.world_score());
}

TEST(PeerDaemonTest, TwoDaemonMeetingMatchesInProcessOracle) {
  const graph::Graph g = SmallGraph();

  // Oracle: the same two peers meeting in-process (kMeasured mode).
  JxpPeer oracle_a = MakePeerA(g);
  JxpPeer oracle_b = MakePeerB(g);
  JxpPeer::Meet(oracle_a, oracle_b);
  JxpPeer::Meet(oracle_b, oracle_a);

  Harness a(MakePeerA(g), {});
  Harness b(MakePeerB(g), {});

  ControlClient control_a, control_b;
  ASSERT_TRUE(control_a.Connect(a.daemon.bound_port()).ok());
  ASSERT_TRUE(control_b.Connect(b.daemon.bound_port()).ok());

  MeetResultMessage result;
  ASSERT_TRUE(control_a.Meet(1, b.daemon.bound_port(), &result).ok());
  EXPECT_TRUE(result.applied);
  EXPECT_FALSE(result.salvaged);
  EXPECT_FALSE(result.declined);
  EXPECT_EQ(result.bytes_wasted, 0u);
  EXPECT_GT(result.bytes_received, 0u);
  ASSERT_TRUE(control_b.Meet(0, a.daemon.bound_port(), &result).ok());
  EXPECT_TRUE(result.applied);

  ScoresReplyMessage scores_a, scores_b;
  ASSERT_TRUE(control_a.GetScores(&scores_a).ok());
  ASSERT_TRUE(control_b.GetScores(&scores_b).ok());
  ExpectScoresMatch(scores_a, oracle_a);
  ExpectScoresMatch(scores_b, oracle_b);

  StatusReplyMessage status;
  ASSERT_TRUE(control_a.GetStatus(&status).ok());
  EXPECT_EQ(status.peer_id, 0u);
  EXPECT_EQ(status.num_meetings, 2u);

  a.StopAndJoin();
  b.StopAndJoin();
  EXPECT_EQ(a.daemon.stats().meetings_initiated, 1u);
  EXPECT_EQ(a.daemon.stats().meetings_accepted, 1u);
  EXPECT_EQ(b.daemon.stats().meetings_accepted, 1u);
  EXPECT_EQ(a.daemon.stats().truncations_detected, 0u);
  EXPECT_EQ(a.daemon.stats().corruptions_detected, 0u);
  // The responder learned the initiator's address from its Hello.
  const PeerDirectory::Entry* found = b.daemon.directory().Find(0);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->port, a.daemon.bound_port());
}

TEST(PeerDaemonTest, ShutdownFdTriggersCheckpointAndRestartResumesBitIdentical) {
  const graph::Graph g = SmallGraph();
  const std::string state_path = ::testing::TempDir() + "/net_daemon_a.jxp";
  ::remove(state_path.c_str());

  // Oracle: two meetings in-process.
  JxpPeer oracle_a = MakePeerA(g);
  JxpPeer oracle_b = MakePeerB(g);
  JxpPeer::Meet(oracle_a, oracle_b);
  JxpPeer::Meet(oracle_a, oracle_b);

  int shutdown_pipe[2];
  ASSERT_EQ(::pipe(shutdown_pipe), 0);

  Harness b(MakePeerB(g), {});
  {
    PeerDaemonOptions options;
    options.state_path = state_path;
    options.shutdown_fd = shutdown_pipe[0];
    Harness a(MakePeerA(g), options);

    ControlClient control;
    ASSERT_TRUE(control.Connect(a.daemon.bound_port()).ok());
    MeetResultMessage result;
    ASSERT_TRUE(control.Meet(1, b.daemon.bound_port(), &result).ok());
    ASSERT_TRUE(result.applied);

    // Graceful shutdown: one byte on the shutdown fd (the SIGTERM handler's
    // self-pipe in the daemon binary) quiesces, checkpoints, and stops the
    // loop — the thread exits on its own, no Stop() needed.
    const uint8_t byte = 1;
    ASSERT_EQ(::write(shutdown_pipe[1], &byte, 1), 1);
    a.thread.join();
    EXPECT_TRUE(a.daemon.quiesced());
    EXPECT_EQ(a.daemon.stats().checkpoints, 1u);
  }

  // Restart from the checkpoint; the resumed daemon must continue exactly
  // where the first instance left off.
  StatusOr<JxpPeer> restored = core::LoadPeerState(state_path, NetOptions());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Harness a2(std::move(restored.value()), {});

  ControlClient control;
  ASSERT_TRUE(control.Connect(a2.daemon.bound_port()).ok());
  MeetResultMessage result;
  ASSERT_TRUE(control.Meet(1, b.daemon.bound_port(), &result).ok());
  ASSERT_TRUE(result.applied);

  ScoresReplyMessage scores_a, scores_b;
  ASSERT_TRUE(control.GetScores(&scores_a).ok());
  ControlClient control_b;
  ASSERT_TRUE(control_b.Connect(b.daemon.bound_port()).ok());
  ASSERT_TRUE(control_b.GetScores(&scores_b).ok());
  ExpectScoresMatch(scores_a, oracle_a);
  ExpectScoresMatch(scores_b, oracle_b);

  ::close(shutdown_pipe[0]);
  ::close(shutdown_pipe[1]);
  ::remove(state_path.c_str());
}

TEST(PeerDaemonTest, QuiescedDaemonDeclinesMeetingsAndCountsWaste) {
  const graph::Graph g = SmallGraph();
  Harness a(MakePeerA(g), {});
  Harness b(MakePeerB(g), {});

  ControlClient control_a, control_b;
  ASSERT_TRUE(control_a.Connect(a.daemon.bound_port()).ok());
  ASSERT_TRUE(control_b.Connect(b.daemon.bound_port()).ok());
  ASSERT_TRUE(control_b.Quiesce().ok());

  MeetResultMessage result;
  ASSERT_TRUE(control_a.Meet(1, b.daemon.bound_port(), &result).ok());
  EXPECT_TRUE(result.declined);
  EXPECT_FALSE(result.applied);

  StatusReplyMessage status;
  ASSERT_TRUE(control_b.GetStatus(&status).ok());
  EXPECT_TRUE(status.quiesced);
  EXPECT_EQ(status.num_meetings, 0u);

  a.StopAndJoin();
  b.StopAndJoin();
  EXPECT_EQ(b.daemon.stats().meetings_declined, 1u);
  // The initiator's whole blob was received and discarded: pure waste.
  EXPECT_GT(b.daemon.stats().wasted_bytes, 0u);
  EXPECT_EQ(a.daemon.peer().num_meetings(), 0u);
}

TEST(PeerDaemonTest, GossipExchangeSpreadsThirdPartyAndGoodbyeTombstones) {
  const graph::Graph g = SmallGraph();
  Harness b(MakePeerB(g), {});

  // Daemon A never runs its loop: GossipOnce dials B synchronously from
  // this thread, which keeps A's state single-threaded in the test.
  PeerDaemonOptions options_a;
  options_a.seed_peers.push_back({1, b.daemon.bound_port(), 0, false});
  EventLoop loop_a;
  PeerDaemon a(std::make_unique<JxpPeer>(MakePeerA(g)), options_a);
  ASSERT_TRUE(a.Start(&loop_a).ok());

  // Teach B about a third peer (and a tombstoned one) directly.
  b.daemon.directory().ObserveDirect(7, 7777, 0);
  b.daemon.directory().MarkDeparted(8, 0);

  a.GossipOnce();
  // A learned both rumors: the live third party and the tombstone.
  const PeerDirectory::Entry* third = a.directory().Find(7);
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(third->port, 7777);
  EXPECT_FALSE(third->departed);
  const PeerDirectory::Entry* tombstone = a.directory().Find(8);
  ASSERT_NE(tombstone, nullptr);
  EXPECT_TRUE(tombstone->departed);
  EXPECT_EQ(a.stats().gossip_exchanges, 1u);

  // A's goodbye (BeginShutdown) tombstones it in B's directory.
  a.BeginShutdown();
  Settle();
  b.StopAndJoin();
  const PeerDirectory::Entry* a_entry = b.daemon.directory().Find(0);
  ASSERT_NE(a_entry, nullptr);
  EXPECT_TRUE(a_entry->departed);
}

TEST(PeerDaemonTest, ChaosCorruptionIsDetectedOnBothBlobsAndSalvaged) {
  const graph::Graph g = SmallGraph();
  Harness a(MakePeerA(g), {});
  Harness b(MakePeerB(g), {});

  ChaosProxyOptions proxy_options;
  proxy_options.target_port = b.daemon.bound_port();
  proxy_options.plan.corruption_probability = 1.0;
  proxy_options.seed = 99;
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.Start().ok());

  ControlClient control;
  ASSERT_TRUE(control.Connect(a.daemon.bound_port()).ok());
  MeetResultMessage result;
  ASSERT_TRUE(control.Meet(1, proxy.bound_port(), &result).ok());
  // The reply blob arrived complete but with one bit flipped somewhere: the
  // frame checksums catch it and the decode degrades to a salvage.
  EXPECT_TRUE(result.salvaged);
  EXPECT_GT(result.bytes_wasted, 0u);

  Settle();
  proxy.Stop();
  a.StopAndJoin();
  b.StopAndJoin();

  const ChaosProxyStats injected = proxy.stats();
  EXPECT_EQ(injected.blobs_corrupted, 2u);  // Offer and reply.
  EXPECT_EQ(injected.blobs_dropped, 0u);
  EXPECT_EQ(injected.blobs_truncated, 0u);
  // Wasted-traffic accounting matches the injector exactly: each flipped
  // blob is detected as a corruption by exactly one receiver.
  EXPECT_EQ(a.daemon.stats().corruptions_detected +
                b.daemon.stats().corruptions_detected,
            injected.blobs_corrupted);
  EXPECT_EQ(a.daemon.stats().truncations_detected, 0u);
  EXPECT_EQ(b.daemon.stats().truncations_detected, 0u);
  EXPECT_GT(a.daemon.stats().wasted_bytes + b.daemon.stats().wasted_bytes, 0u);
}

TEST(PeerDaemonTest, ChaosDropIsDetectedAsTruncationByResponder) {
  const graph::Graph g = SmallGraph();
  Harness a(MakePeerA(g), {});
  Harness b(MakePeerB(g), {});

  ChaosProxyOptions proxy_options;
  proxy_options.target_port = b.daemon.bound_port();
  proxy_options.plan.message_drop_probability = 1.0;
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.Start().ok());

  ControlClient control;
  ASSERT_TRUE(control.Connect(a.daemon.bound_port()).ok());
  MeetResultMessage result;
  ASSERT_TRUE(control.Meet(1, proxy.bound_port(), &result).ok());
  EXPECT_FALSE(result.applied);  // No reply ever came back.

  Settle();
  proxy.Stop();
  a.StopAndJoin();
  b.StopAndJoin();

  const ChaosProxyStats injected = proxy.stats();
  EXPECT_EQ(injected.blobs_dropped, 1u);
  // The responder saw the offer frame announce N bytes and then EOF after 0
  // of them: exactly one truncation detection per dropped blob.
  EXPECT_EQ(b.daemon.stats().truncations_detected, 1u);
  EXPECT_EQ(b.daemon.stats().meetings_accepted, 0u);
  EXPECT_EQ(a.daemon.stats().meeting_failures, 1u);
  // Peer states are untouched by the failed meeting.
  EXPECT_EQ(a.daemon.peer().num_meetings(), 0u);
  EXPECT_EQ(b.daemon.peer().num_meetings(), 0u);
}

TEST(PeerDaemonTest, ChaosTruncationSalvagesPrefixWithoutCrashing) {
  const graph::Graph g = SmallGraph();
  Harness a(MakePeerA(g), {});
  Harness b(MakePeerB(g), {});

  ChaosProxyOptions proxy_options;
  proxy_options.target_port = b.daemon.bound_port();
  proxy_options.plan.truncation_probability = 1.0;
  proxy_options.plan.truncation_keep_fraction = 0.5;
  ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.Start().ok());

  ControlClient control;
  ASSERT_TRUE(control.Connect(a.daemon.bound_port()).ok());
  MeetResultMessage result;
  ASSERT_TRUE(control.Meet(1, proxy.bound_port(), &result).ok());

  Settle();
  proxy.Stop();
  a.StopAndJoin();
  b.StopAndJoin();

  const ChaosProxyStats injected = proxy.stats();
  EXPECT_EQ(injected.blobs_truncated, 1u);
  EXPECT_EQ(b.daemon.stats().truncations_detected, 1u);
  // Theorem 5.3 safety net: whatever prefix was salvaged, scores remain
  // valid probability mass (never an overestimate of 1).
  double total = b.daemon.peer().world_score();
  for (const double score : b.daemon.peer().local_scores()) total += score;
  EXPECT_LE(total, 1.0 + 1e-9);
}

}  // namespace
}  // namespace net
}  // namespace jxp
