#include "net/meeting_scheduler.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "net/event_loop.h"
#include "net/peer_directory.h"

namespace jxp {
namespace net {
namespace {

/// Runs the loop for `ms` of wall clock via a stop timer; scheduler ticks
/// fire in between. Each test builds a fresh loop, so one run per loop.
void RunLoopFor(EventLoop& loop, uint64_t ms) {
  loop.AddTimer(ms, [&loop] { loop.Stop(); });
  loop.Run();
}

MeetingSchedulerOptions FastOptions() {
  MeetingSchedulerOptions options;
  options.enabled = true;
  options.interval_ms = 10;
  options.jitter_ms = 5;
  return options;
}

TEST(MeetingSchedulerTest, StateMachine) {
  EventLoop loop;
  PeerDirectory directory(/*self_id=*/0);
  MeetingScheduler scheduler(&loop, &directory, FastOptions(), /*rng_seed=*/1,
                             [](const PeerDirectory::Entry&) { return MeetOutcome::kApplied; });

  EXPECT_EQ(scheduler.state(), SchedulerState::kIdle);
  scheduler.Start();
  EXPECT_EQ(scheduler.state(), SchedulerState::kRunning);
  scheduler.Pause();
  EXPECT_EQ(scheduler.state(), SchedulerState::kPaused);
  scheduler.Pause();  // Idempotent.
  EXPECT_EQ(scheduler.state(), SchedulerState::kPaused);
  scheduler.Start();  // Resume.
  EXPECT_EQ(scheduler.state(), SchedulerState::kRunning);
  scheduler.Drain();
  EXPECT_EQ(scheduler.state(), SchedulerState::kDrained);

  // kDrained is terminal: neither Start nor Pause moves a drained scheduler.
  scheduler.Start();
  EXPECT_EQ(scheduler.state(), SchedulerState::kDrained);
  scheduler.Pause();
  EXPECT_EQ(scheduler.state(), SchedulerState::kDrained);
}

TEST(MeetingSchedulerTest, TicksMeetPartnersFromTheDirectory) {
  EventLoop loop;
  PeerDirectory directory(/*self_id=*/0);
  directory.ObserveDirect(/*peer_id=*/1, /*port=*/1111, /*now_ms=*/0);

  int meetings = 0;
  uint32_t partner = 0;
  MeetingScheduler scheduler(&loop, &directory, FastOptions(), /*rng_seed=*/7,
                             [&](const PeerDirectory::Entry& entry) {
                               ++meetings;
                               partner = entry.peer_id;
                               return MeetOutcome::kApplied;
                             });
  scheduler.Start();
  RunLoopFor(loop, 200);

  EXPECT_GE(meetings, 3);
  EXPECT_EQ(partner, 1u);
  const MeetingSchedulerStats& stats = scheduler.stats();
  EXPECT_EQ(stats.meetings_started, static_cast<uint64_t>(meetings));
  EXPECT_EQ(stats.meetings_applied, static_cast<uint64_t>(meetings));
  EXPECT_EQ(stats.ticks, stats.meetings_started);
  EXPECT_EQ(stats.skips_no_partner, 0u);
  EXPECT_EQ(stats.skips_backoff, 0u);
  EXPECT_EQ(stats.backoffs_armed, 0u);
}

TEST(MeetingSchedulerTest, EmptyDirectoryTicksSkipWithoutMeeting) {
  EventLoop loop;
  PeerDirectory directory(/*self_id=*/0);

  int meetings = 0;
  MeetingScheduler scheduler(&loop, &directory, FastOptions(), /*rng_seed=*/3,
                             [&](const PeerDirectory::Entry&) {
                               ++meetings;
                               return MeetOutcome::kApplied;
                             });
  scheduler.Start();
  RunLoopFor(loop, 100);

  EXPECT_EQ(meetings, 0);
  EXPECT_GE(scheduler.stats().ticks, 2u);
  EXPECT_EQ(scheduler.stats().skips_no_partner, scheduler.stats().ticks);
  EXPECT_EQ(scheduler.stats().meetings_started, 0u);
}

TEST(MeetingSchedulerTest, DeclineArmsAPerPartnerBackoff) {
  EventLoop loop;
  PeerDirectory directory(/*self_id=*/0);
  directory.ObserveDirect(1, 1111, 0);

  MeetingSchedulerOptions options = FastOptions();
  options.jitter_ms = 0;
  options.backoff_initial_ms = 10000;  // Longer than the test: one decline blocks.

  MeetingScheduler scheduler(&loop, &directory, options, /*rng_seed=*/5,
                             [](const PeerDirectory::Entry&) { return MeetOutcome::kDeclined; });
  scheduler.Start();
  RunLoopFor(loop, 150);

  const MeetingSchedulerStats& stats = scheduler.stats();
  EXPECT_EQ(stats.meetings_started, 1u) << "the partner must stay inside its back-off";
  EXPECT_EQ(stats.declines, 1u);
  EXPECT_EQ(stats.backoffs_armed, 1u);
  EXPECT_GE(stats.skips_backoff, 3u);
}

TEST(MeetingSchedulerTest, FailuresBackOffEachPartnerIndependently) {
  EventLoop loop;
  PeerDirectory directory(/*self_id=*/0);
  directory.ObserveDirect(1, 1111, 0);
  directory.ObserveDirect(2, 2222, 0);

  MeetingSchedulerOptions options = FastOptions();
  options.backoff_initial_ms = 10000;

  MeetingScheduler scheduler(&loop, &directory, options, /*rng_seed=*/9,
                             [](const PeerDirectory::Entry&) { return MeetOutcome::kDialFailed; });
  scheduler.Start();
  RunLoopFor(loop, 400);

  // Each partner fails exactly once, then sits in its own back-off window.
  const MeetingSchedulerStats& stats = scheduler.stats();
  EXPECT_EQ(stats.meetings_started, 2u);
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_EQ(stats.backoffs_armed, 2u);
  EXPECT_GE(stats.skips_backoff, 1u);
}

TEST(MeetingSchedulerTest, AppliedMeetingClearsTheBackoff) {
  EventLoop loop;
  PeerDirectory directory(/*self_id=*/0);
  directory.ObserveDirect(1, 1111, 0);

  MeetingSchedulerOptions options = FastOptions();
  options.jitter_ms = 0;
  options.backoff_initial_ms = 30;

  int calls = 0;
  MeetingScheduler scheduler(&loop, &directory, options, /*rng_seed=*/11,
                             [&](const PeerDirectory::Entry&) {
                               ++calls;
                               return calls == 1 ? MeetOutcome::kDeclined
                                                 : MeetOutcome::kApplied;
                             });
  scheduler.Start();
  RunLoopFor(loop, 300);

  const MeetingSchedulerStats& stats = scheduler.stats();
  EXPECT_EQ(stats.declines, 1u);
  EXPECT_EQ(stats.backoffs_armed, 1u) << "success must clear the back-off for good";
  EXPECT_GE(stats.meetings_applied, 5u);
}

TEST(MeetingSchedulerTest, PauseInsideTheMeetCallbackStopsRearming) {
  EventLoop loop;
  PeerDirectory directory(/*self_id=*/0);
  directory.ObserveDirect(1, 1111, 0);

  // The daemon pauses the scheduler from inside MeetFn when it finds itself
  // quiesced mid-tick; the tick must not re-arm afterwards.
  MeetingScheduler* handle = nullptr;
  MeetingScheduler scheduler(&loop, &directory, FastOptions(), /*rng_seed=*/13,
                             [&](const PeerDirectory::Entry&) {
                               handle->Pause();
                               return MeetOutcome::kBusy;
                             });
  handle = &scheduler;
  scheduler.Start();
  RunLoopFor(loop, 150);

  EXPECT_EQ(scheduler.state(), SchedulerState::kPaused);
  EXPECT_EQ(scheduler.stats().ticks, 1u);
  EXPECT_EQ(scheduler.stats().meetings_started, 1u);
  EXPECT_EQ(scheduler.stats().busy, 1u);
  EXPECT_EQ(loop.pending_timers(), 0u) << "a paused scheduler leaves no timer armed";
}

}  // namespace
}  // namespace net
}  // namespace jxp
