#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "core/jxp_peer.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "net/control_client.h"
#include "net/event_loop.h"
#include "net/peer_daemon.h"

namespace jxp {
namespace net {
namespace {

using core::JxpOptions;
using core::JxpPeer;
using core::MeetingWireMode;

JxpOptions NetOptions() {
  JxpOptions options;
  options.wire_mode = MeetingWireMode::kMeasured;
  return options;
}

/// 0 -> {1,2}, 1 -> {2}, 2 -> {0}, 3 -> {2}, 4 -> {0}, 5 dangling.
graph::Graph SmallGraph() {
  graph::GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 2);
  builder.AddEdge(4, 0);
  return builder.Build();
}

JxpPeer MakePeerA(const graph::Graph& g) {
  return JxpPeer(0, graph::Subgraph::Induce(g, {0, 1, 2}), g.NumNodes(), NetOptions());
}

JxpPeer MakePeerB(const graph::Graph& g) {
  return JxpPeer(1, graph::Subgraph::Induce(g, {2, 3, 4, 5}), g.NumNodes(),
                 NetOptions());
}

/// One daemon + its event loop running on a background thread.
struct Harness {
  Harness(JxpPeer peer, PeerDaemonOptions options)
      : daemon(std::make_unique<JxpPeer>(std::move(peer)), std::move(options)) {
    const Status status = daemon.Start(&loop);
    EXPECT_TRUE(status.ok()) << status.ToString();
    thread = std::thread([this] { loop.Run(); });
  }
  ~Harness() { StopAndJoin(); }

  void StopAndJoin() {
    if (thread.joinable()) {
      loop.Stop();
      thread.join();
    }
  }

  EventLoop loop;
  PeerDaemon daemon;
  std::thread thread;
};

void Settle() { std::this_thread::sleep_for(std::chrono::milliseconds(100)); }

/// Autonomous daemon options: a fast scheduler that waits for the control
/// plane's kStartRequest (autostart off, as the cluster driver runs it).
PeerDaemonOptions AutonomousOptions() {
  PeerDaemonOptions options;
  options.scheduler.enabled = true;
  options.scheduler.autostart = false;
  options.scheduler.interval_ms = 10;
  options.scheduler.jitter_ms = 5;
  options.io_timeout_ms = 2000;
  return options;
}

GossipEntry SeedFor(uint32_t peer_id, uint16_t port) {
  GossipEntry entry;
  entry.peer_id = peer_id;
  entry.port = port;
  return entry;
}

TEST(DaemonAutonomyTest, SchedulerControlLifecycle) {
  const graph::Graph g = SmallGraph();
  Harness b(MakePeerB(g), {});  // Replay-mode partner: accepts inbound only.

  PeerDaemonOptions options = AutonomousOptions();
  options.seed_peers = {SeedFor(1, b.daemon.bound_port())};
  Harness a(MakePeerA(g), options);

  ControlClient control;
  ASSERT_TRUE(control.Connect(a.daemon.bound_port()).ok());

  // autostart=false: the scheduler sits idle until commanded.
  NetStatsReplyMessage stats;
  ASSERT_TRUE(control.GetNetStats(&stats).ok());
  EXPECT_EQ(stats.scheduler_state, static_cast<uint8_t>(SchedulerState::kIdle));
  EXPECT_EQ(stats.meetings_initiated, 0u);

  ASSERT_TRUE(control.StartScheduler().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(control.GetNetStats(&stats).ok());
  EXPECT_EQ(stats.scheduler_state, static_cast<uint8_t>(SchedulerState::kRunning));
  EXPECT_GE(stats.sched_meetings_applied, 2u);
  EXPECT_EQ(stats.meetings_initiated, stats.sched_meetings_started);
  // One pooled dial carries every meeting: reuse, not dial-per-meeting.
  EXPECT_EQ(stats.dials, 1u);
  EXPECT_EQ(stats.dial_failures, 0u);
  EXPECT_EQ(stats.pool_reuses, stats.meetings_initiated - 1);
  EXPECT_EQ(stats.pool_open_connections, 1u);

  ASSERT_TRUE(control.PauseScheduler().ok());
  ASSERT_TRUE(control.GetNetStats(&stats).ok());
  EXPECT_EQ(stats.scheduler_state, static_cast<uint8_t>(SchedulerState::kPaused));
  const uint64_t started_at_pause = stats.sched_meetings_started;
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(control.GetNetStats(&stats).ok());
  EXPECT_EQ(stats.sched_meetings_started, started_at_pause)
      << "a paused scheduler must not meet";
  EXPECT_EQ(stats.pool_open_connections, 1u)
      << "pooled connections stay warm across a pause";

  ASSERT_TRUE(control.StartScheduler().ok());  // Resume.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(control.GetNetStats(&stats).ok());
  EXPECT_GT(stats.sched_meetings_started, started_at_pause);

  ASSERT_TRUE(control.Drain().ok());
  ASSERT_TRUE(control.GetNetStats(&stats).ok());
  EXPECT_EQ(stats.scheduler_state, static_cast<uint8_t>(SchedulerState::kDrained));
  EXPECT_EQ(stats.pool_open_connections, 0u) << "drain closes the pool";

  // Drained is terminal, and the daemon is quiesced: restart is refused and
  // inbound meetings decline.
  EXPECT_FALSE(control.StartScheduler().ok());
  ControlClient control_b;
  ASSERT_TRUE(control_b.Connect(b.daemon.bound_port()).ok());
  MeetResultMessage result;
  ASSERT_TRUE(control_b.Meet(0, a.daemon.bound_port(), &result).ok());
  EXPECT_TRUE(result.declined);
  EXPECT_FALSE(result.applied);

  a.StopAndJoin();
  b.StopAndJoin();
}

TEST(DaemonAutonomyTest, SchedulerControlRejectedWhenAutonomousModeOff) {
  const graph::Graph g = SmallGraph();
  Harness a(MakePeerA(g), {});

  ControlClient control;
  ASSERT_TRUE(control.Connect(a.daemon.bound_port()).ok());
  EXPECT_FALSE(control.StartScheduler().ok());
  EXPECT_FALSE(control.PauseScheduler().ok());
  // Drain still succeeds: it quiesces the daemon and closes the pool even
  // without a scheduler.
  EXPECT_TRUE(control.Drain().ok());

  NetStatsReplyMessage stats;
  ASSERT_TRUE(control.GetNetStats(&stats).ok());
  EXPECT_EQ(stats.scheduler_state, static_cast<uint8_t>(SchedulerState::kIdle));
  EXPECT_EQ(stats.sched_ticks, 0u);

  a.StopAndJoin();
}

TEST(DaemonAutonomyTest, CommandedMeetingsReuseThePooledConnection) {
  const graph::Graph g = SmallGraph();
  Harness a(MakePeerA(g), {});
  Harness b(MakePeerB(g), {});

  ControlClient control;
  ASSERT_TRUE(control.Connect(a.daemon.bound_port()).ok());

  MeetResultMessage result;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(control.Meet(1, b.daemon.bound_port(), &result).ok());
    EXPECT_TRUE(result.applied);
  }

  NetStatsReplyMessage stats;
  ASSERT_TRUE(control.GetNetStats(&stats).ok());
  EXPECT_EQ(stats.meetings_initiated, 3u);
  EXPECT_EQ(stats.dials, 1u) << "replay meetings must share one pooled connection";
  EXPECT_EQ(stats.pool_reuses, 2u);
  EXPECT_EQ(stats.dial_failures, 0u);
  EXPECT_EQ(stats.pool_open_connections, 1u);

  a.StopAndJoin();
  b.StopAndJoin();
}

// The teardown-accounting contract (docs/METRICS.md): a partner restarting
// between meetings kills the pooled connection, and that must surface as
// pool half-open + redial — never as a spurious dial_failure.
TEST(DaemonAutonomyTest, PartnerRestartIsHalfOpenNotDialFailure) {
  const graph::Graph g = SmallGraph();
  Harness a(MakePeerA(g), {});
  auto b = std::make_unique<Harness>(MakePeerB(g), PeerDaemonOptions{});
  const uint16_t b_port = b->daemon.bound_port();

  ControlClient control;
  ASSERT_TRUE(control.Connect(a.daemon.bound_port()).ok());

  MeetResultMessage result;
  ASSERT_TRUE(control.Meet(1, b_port, &result).ok());
  EXPECT_TRUE(result.applied);

  // Tear the partner down completely; its side of the pooled connection
  // closes. Then bring a fresh daemon up on the same port (SO_REUSEADDR).
  b.reset();
  Settle();
  PeerDaemonOptions reborn;
  reborn.listen_port = b_port;
  auto b2 = std::make_unique<Harness>(MakePeerB(g), reborn);
  ASSERT_EQ(b2->daemon.bound_port(), b_port);

  ASSERT_TRUE(control.Meet(1, b_port, &result).ok());
  EXPECT_TRUE(result.applied);

  NetStatsReplyMessage stats;
  ASSERT_TRUE(control.GetNetStats(&stats).ok());
  EXPECT_EQ(stats.pool_half_open, 1u);
  EXPECT_EQ(stats.pool_redials, 1u);
  EXPECT_EQ(stats.dial_failures, 0u)
      << "a dead pooled connection is lifecycle, not a failed connect";
  EXPECT_EQ(stats.dials, 2u);  // The original dial + the transparent redial.
  EXPECT_EQ(stats.meetings_initiated, 2u);
  EXPECT_EQ(stats.meeting_failures, 0u);

  a.StopAndJoin();
  b2->StopAndJoin();
}

}  // namespace
}  // namespace net
}  // namespace jxp
