#include "net/peer_directory.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace jxp {
namespace net {
namespace {

GossipEntry Rumor(uint32_t peer_id, uint16_t port, uint32_t age_ms,
                  bool departed = false) {
  GossipEntry entry;
  entry.peer_id = peer_id;
  entry.port = port;
  entry.age_ms = age_ms;
  entry.departed = departed;
  return entry;
}

TEST(PeerDirectoryTest, ObserveDirectAddsAndRefreshes) {
  PeerDirectory directory(/*self_id=*/0, /*staleness_ms=*/1000);
  directory.ObserveDirect(1, 5000, 10);
  ASSERT_NE(directory.Find(1), nullptr);
  EXPECT_EQ(directory.Find(1)->port, 5000);
  EXPECT_EQ(directory.Find(1)->last_heard_ms, 10u);
  directory.ObserveDirect(1, 5001, 20);
  EXPECT_EQ(directory.Find(1)->port, 5001);
  EXPECT_EQ(directory.Find(1)->last_heard_ms, 20u);
  EXPECT_EQ(directory.size(), 1u);
}

TEST(PeerDirectoryTest, SelfIsNeverRecorded) {
  PeerDirectory directory(7);
  directory.ObserveDirect(7, 5000, 10);
  directory.ObserveGossip(Rumor(7, 5000, 0), 10);
  EXPECT_EQ(directory.size(), 0u);
}

// The satellite guarantee: once a peer departs, gossip alone can never make
// it look alive again — no matter how fresh the rumor — and eviction never
// forgets the tombstone. Only first-hand contact resurrects.
TEST(PeerDirectoryTest, StalenessEvictionNeverResurrectsDepartedPeers) {
  PeerDirectory directory(/*self_id=*/0, /*staleness_ms=*/100);
  directory.ObserveDirect(1, 5000, 10);
  directory.MarkDeparted(1, 20);
  ASSERT_TRUE(directory.Find(1)->departed);

  // The freshest possible "alive" rumor does not resurrect.
  directory.ObserveGossip(Rumor(1, 5000, 0), 30);
  EXPECT_TRUE(directory.Find(1)->departed);
  EXPECT_EQ(directory.num_alive(), 0u);

  // Eviction far past the horizon removes live entries, not tombstones...
  directory.ObserveDirect(2, 6000, 30);
  EXPECT_EQ(directory.EvictStale(100000), 1u);  // Peer 2 evicted.
  ASSERT_NE(directory.Find(1), nullptr);
  EXPECT_TRUE(directory.Find(1)->departed);
  EXPECT_EQ(directory.Find(2), nullptr);

  // ...and even after eviction churn, gossip still cannot resurrect.
  directory.ObserveGossip(Rumor(1, 5000, 0), 100010);
  EXPECT_TRUE(directory.Find(1)->departed);

  // First-hand contact is the only way back.
  directory.ObserveDirect(1, 5002, 100020);
  EXPECT_FALSE(directory.Find(1)->departed);
  EXPECT_EQ(directory.Find(1)->port, 5002);
}

TEST(PeerDirectoryTest, DepartedRumorTombstonesLiveEntry) {
  PeerDirectory directory(0, 1000);
  directory.ObserveDirect(1, 5000, 10);
  // Even an *older* departed rumor wins: departure propagates regardless of
  // relative freshness.
  directory.ObserveGossip(Rumor(1, 5000, 500, /*departed=*/true), 100);
  EXPECT_TRUE(directory.Find(1)->departed);
}

TEST(PeerDirectoryTest, DepartedRumorAboutUnknownPeerIsKept) {
  PeerDirectory directory(0, 1000);
  directory.ObserveGossip(Rumor(3, 7000, 10, /*departed=*/true), 50);
  ASSERT_NE(directory.Find(3), nullptr);
  EXPECT_TRUE(directory.Find(3)->departed);
  // A later alive rumor (even fresher) must not flip the tombstone.
  directory.ObserveGossip(Rumor(3, 7000, 0), 60);
  EXPECT_TRUE(directory.Find(3)->departed);
}

TEST(PeerDirectoryTest, RumorsAtOrBeyondStalenessHorizonAreDiscarded) {
  PeerDirectory directory(0, 1000);
  directory.ObserveGossip(Rumor(1, 5000, 1000), 2000);
  EXPECT_EQ(directory.Find(1), nullptr);
  directory.ObserveGossip(Rumor(1, 5000, 999), 2000);
  EXPECT_NE(directory.Find(1), nullptr);
}

TEST(PeerDirectoryTest, FresherRumorWinsStalerIsIgnored) {
  PeerDirectory directory(0, 10000);
  directory.ObserveGossip(Rumor(1, 5000, 100), 1000);  // Heard at 900.
  directory.ObserveGossip(Rumor(1, 6000, 500), 1000);  // Heard at 500: staler.
  EXPECT_EQ(directory.Find(1)->port, 5000);
  directory.ObserveGossip(Rumor(1, 7000, 50), 1000);  // Heard at 950: fresher.
  EXPECT_EQ(directory.Find(1)->port, 7000);
}

TEST(PeerDirectoryTest, GossipSampleRebasesAgesAndIncludesTombstones) {
  PeerDirectory directory(0, 10000);
  directory.ObserveDirect(1, 5000, 100);
  directory.MarkDeparted(2, 200);
  Random rng(1);
  const std::vector<GossipEntry> sample = directory.GossipSample(300, 10, rng);
  ASSERT_EQ(sample.size(), 2u);
  bool saw_live = false, saw_tombstone = false;
  for (const GossipEntry& entry : sample) {
    if (entry.peer_id == 1) {
      saw_live = true;
      EXPECT_EQ(entry.age_ms, 200u);
      EXPECT_FALSE(entry.departed);
    }
    if (entry.peer_id == 2) {
      saw_tombstone = true;
      EXPECT_EQ(entry.age_ms, 100u);
      EXPECT_TRUE(entry.departed);
    }
  }
  EXPECT_TRUE(saw_live);
  EXPECT_TRUE(saw_tombstone);
}

TEST(PeerDirectoryTest, GossipSampleRespectsBound) {
  PeerDirectory directory(0, 1u << 30);
  for (uint32_t id = 1; id <= 50; ++id) directory.ObserveDirect(id, 5000, 10);
  Random rng(7);
  const std::vector<GossipEntry> sample = directory.GossipSample(20, 8, rng);
  EXPECT_EQ(sample.size(), 8u);
}

TEST(PeerDirectoryTest, SelectPartnerSkipsTombstonesAndEmptyDirectory) {
  PeerDirectory directory(0, 1000);
  Random rng(3);
  PeerDirectory::Entry partner;
  EXPECT_FALSE(directory.SelectPartner(rng, &partner));
  directory.MarkDeparted(1, 10);
  EXPECT_FALSE(directory.SelectPartner(rng, &partner));
  directory.ObserveDirect(2, 6000, 10);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(directory.SelectPartner(rng, &partner));
    EXPECT_EQ(partner.peer_id, 2u);
  }
}

TEST(PeerDirectoryTest, AlivePeersIsSortedById) {
  PeerDirectory directory(0, 1000);
  directory.ObserveDirect(9, 1, 10);
  directory.ObserveDirect(3, 2, 10);
  directory.ObserveDirect(5, 3, 10);
  directory.MarkDeparted(4, 10);
  const std::vector<PeerDirectory::Entry> alive = directory.AlivePeers();
  ASSERT_EQ(alive.size(), 3u);
  EXPECT_EQ(alive[0].peer_id, 3u);
  EXPECT_EQ(alive[1].peer_id, 5u);
  EXPECT_EQ(alive[2].peer_id, 9u);
}

}  // namespace
}  // namespace net
}  // namespace jxp
