#include "net/event_loop.h"

#include <unistd.h>

#include <sys/epoll.h>

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace jxp {
namespace net {
namespace {

TEST(EventLoopTest, TimerFires) {
  EventLoop loop;
  bool fired = false;
  loop.AddTimer(5, [&] {
    fired = true;
    loop.Stop();
  });
  loop.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.AddTimer(40, [&] {
    order.push_back(2);
    loop.Stop();
  });
  loop.AddTimer(5, [&] { order.push_back(1); });
  loop.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(EventLoopTest, CancelledTimerNeverFires) {
  EventLoop loop;
  bool cancelled_fired = false;
  const EventLoop::TimerId id = loop.AddTimer(5, [&] { cancelled_fired = true; });
  loop.CancelTimer(id);
  loop.AddTimer(20, [&] { loop.Stop(); });
  loop.Run();
  EXPECT_FALSE(cancelled_fired);
}

TEST(EventLoopTest, TimerCanReArmItself) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count >= 3) {
      loop.Stop();
      return;
    }
    loop.AddTimer(2, tick);
  };
  loop.AddTimer(2, tick);
  loop.Run();
  EXPECT_EQ(count, 3);
}

TEST(EventLoopTest, FarTimerDoesNotFireEarly) {
  // A deadline several wheel revolutions out (the wheel covers ~1 s) must
  // survive sweeps that pass its slot without reaching its deadline.
  EventLoop loop;
  bool fired = false;
  loop.AddTimer(60000, [&] { fired = true; });
  for (int i = 0; i < 5; ++i) loop.RunOnce(5);
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.pending_timers(), 1u);
}

TEST(EventLoopTest, FdCallbackRunsWhenReadable) {
  EventLoop loop;
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  std::vector<uint8_t> received;
  ASSERT_TRUE(loop.Add(pipe_fds[0], EPOLLIN, [&](uint32_t) {
    uint8_t byte = 0;
    if (::read(pipe_fds[0], &byte, 1) == 1) received.push_back(byte);
    loop.Stop();
  }).ok());
  const uint8_t byte = 0xab;
  ASSERT_EQ(::write(pipe_fds[1], &byte, 1), 1);
  loop.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 0xab);
  ASSERT_TRUE(loop.Remove(pipe_fds[0]).ok());
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

TEST(EventLoopTest, RemoveDuringDispatchIsSafe) {
  // Two ready fds; the first callback removes the second. Dispatch must
  // re-check registration and skip the removed fd's callback.
  EventLoop loop;
  int a[2], b[2];
  ASSERT_EQ(::pipe(a), 0);
  ASSERT_EQ(::pipe(b), 0);
  int b_fired = 0;
  ASSERT_TRUE(loop.Add(a[0], EPOLLIN, [&](uint32_t) {
    uint8_t byte;
    (void)!::read(a[0], &byte, 1);
    (void)loop.Remove(b[0]);
    loop.Stop();
  }).ok());
  ASSERT_TRUE(loop.Add(b[0], EPOLLIN, [&](uint32_t) { ++b_fired; }).ok());
  const uint8_t byte = 1;
  ASSERT_EQ(::write(a[1], &byte, 1), 1);
  ASSERT_EQ(::write(b[1], &byte, 1), 1);
  loop.RunOnce(100);
  EXPECT_FALSE(loop.IsRegistered(b[0]));
  EXPECT_EQ(b_fired, 0);
  (void)loop.Remove(a[0]);
  ::close(a[0]);
  ::close(a[1]);
  ::close(b[0]);
  ::close(b[1]);
}

TEST(EventLoopTest, StopFromAnotherThreadWakesBlockedLoop) {
  EventLoop loop;
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.Stop();
  });
  loop.Run();  // Would block forever without the wakeup pipe.
  stopper.join();
  EXPECT_TRUE(loop.stopped());
}

TEST(EventLoopTest, NowMsIsMonotonic) {
  EventLoop loop;
  const uint64_t t0 = loop.NowMs();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const uint64_t t1 = loop.NowMs();
  EXPECT_GE(t1, t0 + 4);
}

}  // namespace
}  // namespace net
}  // namespace jxp
