#include "net/net_protocol.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "wire/frame_assembler.h"

namespace jxp {
namespace net {
namespace {

/// Feeds one encoded frame through a FrameAssembler and returns its payload
/// (the same path the daemon uses), checking the type byte.
std::vector<uint8_t> PayloadOf(const std::vector<uint8_t>& frame, NetMessageType type) {
  wire::FrameAssembler assembler;
  EXPECT_EQ(assembler.Feed(frame), frame.size());
  EXPECT_TRUE(assembler.HasFrame()) << assembler.error().ToString();
  EXPECT_EQ(assembler.frame_type(), static_cast<uint8_t>(type));
  return std::vector<uint8_t>(assembler.frame_payload().begin(),
                              assembler.frame_payload().end());
}

TEST(NetProtocolTest, HelloRoundTrip) {
  HelloMessage in;
  in.peer_id = 42;
  in.listen_port = 65535;
  std::vector<uint8_t> frame;
  AppendHello(in, frame);
  HelloMessage out;
  ASSERT_TRUE(ParseHello(PayloadOf(frame, NetMessageType::kHello), &out).ok());
  EXPECT_EQ(out.peer_id, 42u);
  EXPECT_EQ(out.listen_port, 65535);
}

TEST(NetProtocolTest, PeerExchangeRoundTrip) {
  PeerExchangeMessage in;
  in.entries.push_back({1, 1000, 0, false});
  in.entries.push_back({2, 2000, 12345, true});
  in.entries.push_back({0xffffffff, 1, 0xfffffffe, false});
  std::vector<uint8_t> frame;
  AppendPeerExchange(in, frame);
  PeerExchangeMessage out;
  ASSERT_TRUE(
      ParsePeerExchange(PayloadOf(frame, NetMessageType::kPeerExchange), &out).ok());
  ASSERT_EQ(out.entries.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.entries[i].peer_id, in.entries[i].peer_id);
    EXPECT_EQ(out.entries[i].port, in.entries[i].port);
    EXPECT_EQ(out.entries[i].age_ms, in.entries[i].age_ms);
    EXPECT_EQ(out.entries[i].departed, in.entries[i].departed);
  }
}

TEST(NetProtocolTest, MeetingHeaderRoundTripBothTypes) {
  MeetingHeader in;
  in.sender_id = 7;
  in.payload_bytes = 123456789;
  for (const NetMessageType type :
       {NetMessageType::kMeetingOffer, NetMessageType::kMeetingReply}) {
    std::vector<uint8_t> frame;
    AppendMeetingHeader(type, in, frame);
    MeetingHeader out;
    ASSERT_TRUE(ParseMeetingHeader(PayloadOf(frame, type), &out).ok());
    EXPECT_EQ(out.sender_id, 7u);
    EXPECT_EQ(out.payload_bytes, 123456789u);
  }
}

TEST(NetProtocolTest, MeetCommandAndResultRoundTrip) {
  MeetCommandMessage command;
  command.partner_id = 3;
  command.port = 40123;
  std::vector<uint8_t> frame;
  AppendMeetCommand(command, frame);
  MeetCommandMessage command_out;
  ASSERT_TRUE(
      ParseMeetCommand(PayloadOf(frame, NetMessageType::kMeetCommand), &command_out)
          .ok());
  EXPECT_EQ(command_out.partner_id, 3u);
  EXPECT_EQ(command_out.port, 40123);

  MeetResultMessage result;
  result.applied = true;
  result.salvaged = true;
  result.declined = false;
  result.bytes_sent = 1ull << 40;
  result.bytes_received = 77;
  result.bytes_wasted = 33;
  frame.clear();
  AppendMeetResult(result, frame);
  MeetResultMessage result_out;
  ASSERT_TRUE(
      ParseMeetResult(PayloadOf(frame, NetMessageType::kMeetResult), &result_out).ok());
  EXPECT_TRUE(result_out.applied);
  EXPECT_TRUE(result_out.salvaged);
  EXPECT_FALSE(result_out.declined);
  EXPECT_EQ(result_out.bytes_sent, 1ull << 40);
  EXPECT_EQ(result_out.bytes_received, 77u);
  EXPECT_EQ(result_out.bytes_wasted, 33u);
}

TEST(NetProtocolTest, StatusReplyRoundTrip) {
  StatusReplyMessage in;
  in.peer_id = 9;
  in.num_meetings = 1ull << 33;
  in.meetings_accepted = 17;
  in.local_pages = 1000;
  in.world_entries = 2000;
  in.directory_size = 7;
  in.quiesced = true;
  std::vector<uint8_t> frame;
  AppendStatusReply(in, frame);
  StatusReplyMessage out;
  ASSERT_TRUE(
      ParseStatusReply(PayloadOf(frame, NetMessageType::kStatusReply), &out).ok());
  EXPECT_EQ(out.peer_id, 9u);
  EXPECT_EQ(out.num_meetings, 1ull << 33);
  EXPECT_EQ(out.meetings_accepted, 17u);
  EXPECT_EQ(out.local_pages, 1000u);
  EXPECT_EQ(out.world_entries, 2000u);
  EXPECT_EQ(out.directory_size, 7u);
  EXPECT_TRUE(out.quiesced);
}

TEST(NetProtocolTest, ScoresReplyRoundTripsDoublesBitExactly) {
  ScoresReplyMessage in;
  in.entries.push_back({0, 0.15234567891234567});
  in.entries.push_back({1, 5e-324});            // Smallest subnormal.
  in.entries.push_back({2, 0.9999999999999999});
  in.world_score = 1.0 / 3.0;
  std::vector<uint8_t> frame;
  AppendScoresReply(in, frame);
  ScoresReplyMessage out;
  ASSERT_TRUE(
      ParseScoresReply(PayloadOf(frame, NetMessageType::kScoresReply), &out).ok());
  ASSERT_EQ(out.entries.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.entries[i].page, in.entries[i].page);
    uint64_t in_bits = 0, out_bits = 0;
    std::memcpy(&in_bits, &in.entries[i].score, sizeof(in_bits));
    std::memcpy(&out_bits, &out.entries[i].score, sizeof(out_bits));
    EXPECT_EQ(out_bits, in_bits);
  }
  EXPECT_EQ(out.world_score, 1.0 / 3.0);
}

TEST(NetProtocolTest, AckRoundTrip) {
  AckMessage in;
  in.ok = false;
  in.detail = "disk full";
  std::vector<uint8_t> frame;
  AppendAck(NetMessageType::kCheckpointReply, in, frame);
  AckMessage out;
  ASSERT_TRUE(ParseAck(PayloadOf(frame, NetMessageType::kCheckpointReply), &out).ok());
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.detail, "disk full");
}

TEST(NetProtocolTest, GoodbyeAndDeclineCarrySenderId) {
  std::vector<uint8_t> frame;
  AppendGoodbye(11, frame);
  uint32_t sender = 0;
  ASSERT_TRUE(ParseSenderId(PayloadOf(frame, NetMessageType::kGoodbye), &sender).ok());
  EXPECT_EQ(sender, 11u);

  frame.clear();
  AppendMeetingDecline(12, frame);
  ASSERT_TRUE(
      ParseSenderId(PayloadOf(frame, NetMessageType::kMeetingDecline), &sender).ok());
  EXPECT_EQ(sender, 12u);
}

TEST(NetProtocolTest, ParsersRejectTruncatedPayloads) {
  PeerExchangeMessage exchange;
  exchange.entries.push_back({1, 2, 3, false});
  std::vector<uint8_t> frame;
  AppendPeerExchange(exchange, frame);
  std::vector<uint8_t> payload = PayloadOf(frame, NetMessageType::kPeerExchange);
  ASSERT_FALSE(payload.empty());
  payload.pop_back();
  PeerExchangeMessage out;
  EXPECT_FALSE(ParsePeerExchange(payload, &out).ok());

  StatusReplyMessage status;
  frame.clear();
  AppendStatusReply(status, frame);
  payload = PayloadOf(frame, NetMessageType::kStatusReply);
  payload.resize(payload.size() / 2);
  StatusReplyMessage status_out;
  EXPECT_FALSE(ParseStatusReply(payload, &status_out).ok());
}

TEST(NetProtocolTest, NetTypesAreDisjointFromMeetingPayloadTypes) {
  // The frozen meeting types are 1..3; every net type must be >= 0x10 so a
  // net frame can never be mistaken for meeting content.
  for (const NetMessageType type :
       {NetMessageType::kHello, NetMessageType::kPeerExchange,
        NetMessageType::kMeetingOffer, NetMessageType::kMeetingReply,
        NetMessageType::kMeetingDecline, NetMessageType::kGoodbye,
        NetMessageType::kStatusRequest, NetMessageType::kStatusReply,
        NetMessageType::kCheckpointRequest, NetMessageType::kCheckpointReply,
        NetMessageType::kQuiesceRequest, NetMessageType::kQuiesceReply,
        NetMessageType::kMeetCommand, NetMessageType::kMeetResult,
        NetMessageType::kScoresRequest, NetMessageType::kScoresReply}) {
    EXPECT_GE(static_cast<uint8_t>(type), 0x10);
  }
}

}  // namespace
}  // namespace net
}  // namespace jxp
