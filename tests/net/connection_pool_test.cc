#include "net/connection_pool.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/status.h"
#include "net/socket_util.h"

namespace jxp {
namespace net {
namespace {

/// A loopback listener the pool can dial. Connections sit in the accept
/// backlog until a test calls Accept() to take the server end (needed only
/// by the half-open tests, which manipulate the server side of a pooled
/// connection).
struct Listener {
  Listener() {
    const Status status = CreateLoopbackListener(0, &fd, &port);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  /// Retries the non-blocking accept until the pending connect shows up.
  UniqueFd Accept() {
    for (int i = 0; i < 400; ++i) {
      UniqueFd conn;
      const Status status = AcceptConnection(fd.get(), &conn);
      EXPECT_TRUE(status.ok()) << status.ToString();
      if (conn.valid()) return conn;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ADD_FAILURE() << "no pending connection to accept";
    return UniqueFd();
  }

  UniqueFd fd;
  uint16_t port = 0;
};

/// FIN/data delivery on loopback is fast but not synchronous with the
/// test thread; give the kernel a beat before peeking.
void SettleSocket() { std::this_thread::sleep_for(std::chrono::milliseconds(20)); }

TEST(ConnectionPoolTest, DialThenReuse) {
  Listener server;
  uint64_t now = 0;
  ConnectionPool pool({}, [&] { return now; });

  int fd = -1;
  bool reused = true;
  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());
  EXPECT_FALSE(reused);
  EXPECT_GE(fd, 0);
  pool.Release(server.port, /*healthy=*/true);

  int fd2 = -1;
  ASSERT_TRUE(pool.Acquire(server.port, &fd2, &reused).ok());
  EXPECT_TRUE(reused);
  EXPECT_EQ(fd2, fd) << "a reuse must hand back the pooled socket";
  pool.Release(server.port, /*healthy=*/true);

  EXPECT_EQ(pool.stats().dials, 1u);
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(pool.stats().dial_failures, 0u);
  EXPECT_EQ(pool.open_connections(), 1u);
}

TEST(ConnectionPoolTest, InFlightLimitRejectsAsBusy) {
  Listener server;
  uint64_t now = 0;
  ConnectionPool pool({}, [&] { return now; });

  int fd = -1;
  bool reused = false;
  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());

  int fd2 = -1;
  const Status second = pool.Acquire(server.port, &fd2, &reused);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.stats().busy_rejections, 1u);

  pool.Release(server.port, /*healthy=*/true);
  ASSERT_TRUE(pool.Acquire(server.port, &fd2, &reused).ok());
  EXPECT_TRUE(reused);
  pool.Release(server.port, /*healthy=*/true);
}

TEST(ConnectionPoolTest, UnhealthyReleaseClosesTheConnection) {
  Listener server;
  uint64_t now = 0;
  ConnectionPool pool({}, [&] { return now; });

  int fd = -1;
  bool reused = false;
  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());
  pool.Release(server.port, /*healthy=*/false);

  EXPECT_EQ(pool.stats().released_broken, 1u);
  EXPECT_EQ(pool.open_connections(), 0u);

  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());
  EXPECT_FALSE(reused) << "a broken release must not be reused";
  EXPECT_EQ(pool.stats().dials, 2u);
  pool.Release(server.port, /*healthy=*/true);
}

TEST(ConnectionPoolTest, PeerCloseWhilePooledIsHalfOpenNotDialFailure) {
  Listener server;
  uint64_t now = 0;
  ConnectionPool pool({}, [&] { return now; });

  int fd = -1;
  bool reused = false;
  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());
  pool.Release(server.port, /*healthy=*/true);

  // The peer accepts and immediately closes: the pooled connection is now
  // half-open. The next acquire must detect it, count it as lifecycle (not
  // a failed connect), and transparently dial a replacement.
  { UniqueFd conn = server.Accept(); }
  SettleSocket();

  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());
  EXPECT_FALSE(reused);
  EXPECT_EQ(pool.stats().half_open_detected, 1u);
  EXPECT_EQ(pool.stats().redials, 1u);
  EXPECT_EQ(pool.stats().dials, 2u);
  EXPECT_EQ(pool.stats().dial_failures, 0u);
  EXPECT_EQ(pool.stats().reuses, 0u);
  pool.Release(server.port, /*healthy=*/true);
}

TEST(ConnectionPoolTest, StrayBytesOnPooledConnectionMeanDead) {
  Listener server;
  uint64_t now = 0;
  ConnectionPool pool({}, [&] { return now; });

  int fd = -1;
  bool reused = false;
  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());
  pool.Release(server.port, /*healthy=*/true);

  // Unsolicited bytes while idle: the stream is no longer aligned on a
  // frame boundary, so the pool must treat it like a dead connection even
  // though the socket itself is healthy.
  UniqueFd conn = server.Accept();
  const uint8_t stray = 0x5a;
  ASSERT_TRUE(WriteAll(conn.get(), {&stray, 1}).ok());
  SettleSocket();

  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());
  EXPECT_FALSE(reused);
  EXPECT_EQ(pool.stats().half_open_detected, 1u);
  EXPECT_EQ(pool.stats().redials, 1u);
  EXPECT_EQ(pool.stats().dial_failures, 0u);
  pool.Release(server.port, /*healthy=*/true);
}

TEST(ConnectionPoolTest, ConnectionRefusedCountsDialFailure) {
  uint16_t dead_port = 0;
  {
    Listener ephemeral;
    dead_port = ephemeral.port;
  }  // Listener closed: the port now refuses connections.

  uint64_t now = 0;
  ConnectionPool pool({}, [&] { return now; });

  int fd = -1;
  bool reused = false;
  const Status status = pool.Acquire(dead_port, &fd, &reused);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.code(), StatusCode::kFailedPrecondition)
      << "a refused connect is a dial failure, not back-pressure";
  EXPECT_EQ(pool.stats().dial_failures, 1u);
  EXPECT_EQ(pool.stats().dials, 0u);
  EXPECT_EQ(pool.open_connections(), 0u);
}

TEST(ConnectionPoolTest, LruEvictionPrefersTheColdestIdleConnection) {
  Listener s1, s2, s3;
  ConnectionPoolOptions options;
  options.max_connections = 2;
  uint64_t now = 0;
  ConnectionPool pool(options, [&] { return now; });

  int fd = -1;
  bool reused = false;
  ASSERT_TRUE(pool.Acquire(s1.port, &fd, &reused).ok());
  pool.Release(s1.port, true);
  now = 10;
  ASSERT_TRUE(pool.Acquire(s2.port, &fd, &reused).ok());
  pool.Release(s2.port, true);

  // At the cap; s1 is the coldest idle connection and must be the victim.
  now = 20;
  ASSERT_TRUE(pool.Acquire(s3.port, &fd, &reused).ok());
  pool.Release(s3.port, true);
  EXPECT_EQ(pool.stats().evictions_lru, 1u);
  EXPECT_EQ(pool.open_connections(), 2u);

  ASSERT_TRUE(pool.Acquire(s2.port, &fd, &reused).ok());
  EXPECT_TRUE(reused) << "the warmer connection must survive the eviction";
  pool.Release(s2.port, true);

  ASSERT_TRUE(pool.Acquire(s1.port, &fd, &reused).ok());
  EXPECT_FALSE(reused) << "the evicted connection must need a fresh dial";
  EXPECT_EQ(pool.stats().evictions_lru, 2u);
  pool.Release(s1.port, true);
}

TEST(ConnectionPoolTest, AcquireFailsWhenEveryConnectionIsInFlight) {
  Listener s1, s2;
  ConnectionPoolOptions options;
  options.max_connections = 1;
  uint64_t now = 0;
  ConnectionPool pool(options, [&] { return now; });

  int fd = -1;
  bool reused = false;
  ASSERT_TRUE(pool.Acquire(s1.port, &fd, &reused).ok());

  // The only slot is leased: a different port cannot evict it.
  int fd2 = -1;
  const Status status = pool.Acquire(s2.port, &fd2, &reused);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.stats().busy_rejections, 1u);
  EXPECT_EQ(pool.open_connections(), 1u);

  pool.Release(s1.port, true);
  ASSERT_TRUE(pool.Acquire(s2.port, &fd2, &reused).ok());
  EXPECT_EQ(pool.stats().evictions_lru, 1u);
  pool.Release(s2.port, true);
}

TEST(ConnectionPoolTest, SweepIdleExpiresOnTheInjectedClock) {
  Listener server;
  ConnectionPoolOptions options;
  options.idle_timeout_ms = 100;
  uint64_t now = 0;
  ConnectionPool pool(options, [&] { return now; });

  int fd = -1;
  bool reused = false;
  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());
  pool.Release(server.port, true);  // last_used = 0

  now = 99;
  EXPECT_EQ(pool.SweepIdle(), 0u);
  now = 100;
  EXPECT_EQ(pool.SweepIdle(), 1u);
  EXPECT_EQ(pool.stats().evictions_idle, 1u);
  EXPECT_EQ(pool.open_connections(), 0u);
}

TEST(ConnectionPoolTest, SweepIdleSparesInFlightConnections) {
  Listener server;
  ConnectionPoolOptions options;
  options.idle_timeout_ms = 100;
  uint64_t now = 0;
  ConnectionPool pool(options, [&] { return now; });

  int fd = -1;
  bool reused = false;
  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());

  now = 1000;
  EXPECT_EQ(pool.SweepIdle(), 0u) << "a leased connection must never be swept";
  EXPECT_EQ(pool.open_connections(), 1u);
  pool.Release(server.port, true);
}

TEST(ConnectionPoolTest, ZeroIdleTimeoutNeverExpires) {
  Listener server;
  ConnectionPoolOptions options;
  options.idle_timeout_ms = 0;
  uint64_t now = 0;
  ConnectionPool pool(options, [&] { return now; });

  int fd = -1;
  bool reused = false;
  ASSERT_TRUE(pool.Acquire(server.port, &fd, &reused).ok());
  pool.Release(server.port, true);

  now = 1u << 30;
  EXPECT_EQ(pool.SweepIdle(), 0u);
  EXPECT_EQ(pool.open_connections(), 1u);
}

TEST(ConnectionPoolTest, CloseAllClosesIdleAndLeavesLeased) {
  Listener s1, s2;
  uint64_t now = 0;
  ConnectionPool pool({}, [&] { return now; });

  int fd = -1;
  bool reused = false;
  ASSERT_TRUE(pool.Acquire(s1.port, &fd, &reused).ok());  // held in flight
  int fd2 = -1;
  ASSERT_TRUE(pool.Acquire(s2.port, &fd2, &reused).ok());
  pool.Release(s2.port, true);  // idle

  EXPECT_EQ(pool.CloseAll(), 1u);
  EXPECT_EQ(pool.open_connections(), 1u) << "the leased connection waits for Release";

  pool.Release(s1.port, true);
  EXPECT_EQ(pool.CloseAll(), 1u);
  EXPECT_EQ(pool.open_connections(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace jxp
