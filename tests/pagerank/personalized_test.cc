#include "pagerank/personalized.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"

namespace jxp {
namespace pagerank {
namespace {

TEST(PersonalizedPageRankTest, FullTeleportSetEqualsGlobalPageRank) {
  Random rng(1);
  const graph::Graph g = graph::BarabasiAlbert(200, 3, rng);
  std::vector<graph::PageId> all(g.NumNodes());
  for (graph::PageId p = 0; p < g.NumNodes(); ++p) all[p] = p;
  PageRankOptions options;
  options.tolerance = 1e-13;
  const PageRankResult global = ComputePageRank(g, options);
  const PageRankResult personalized = ComputePersonalizedPageRank(g, all, options);
  for (size_t p = 0; p < g.NumNodes(); ++p) {
    EXPECT_NEAR(personalized.scores[p], global.scores[p], 1e-10);
  }
}

TEST(PersonalizedPageRankTest, BiasesTowardTopic) {
  Random rng(2);
  graph::WebGraphParams params;
  params.num_nodes = 1500;
  params.num_categories = 5;
  const graph::CategorizedGraph cg = GenerateWebGraph(params, rng);
  std::vector<graph::PageId> topic_pages;
  for (graph::PageId p = 0; p < cg.graph.NumNodes(); ++p) {
    if (cg.category[p] == 2) topic_pages.push_back(p);
  }
  PageRankOptions options;
  const PageRankResult global = ComputePageRank(cg.graph, options);
  const PageRankResult biased =
      ComputePersonalizedPageRank(cg.graph, topic_pages, options);

  double topic_mass_global = 0;
  double topic_mass_biased = 0;
  for (graph::PageId p : topic_pages) {
    topic_mass_global += global.scores[p];
    topic_mass_biased += biased.scores[p];
  }
  // The topic holds ~20% of the global mass; personalization concentrates a
  // clear majority on it (topical locality keeps the walk inside).
  EXPECT_GT(topic_mass_biased, 2 * topic_mass_global);
  EXPECT_GT(topic_mass_biased, 0.5);
}

TEST(PersonalizedPageRankTest, SingleSeedRootedWalk) {
  // A line 0 -> 1 -> 2 with teleport pinned to 0: scores decay along the
  // chain by the damping factor.
  graph::GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const graph::Graph g = builder.Build();
  PageRankOptions options;
  options.damping = 0.5;
  options.tolerance = 1e-14;
  const std::vector<graph::PageId> seed = {0};
  const PageRankResult result = ComputePersonalizedPageRank(g, seed, options);
  EXPECT_GT(result.scores[0], result.scores[1]);
  EXPECT_GT(result.scores[1], result.scores[2]);
  // x0 = 0.5*(x2's dangling share... page 2 dangling -> all mass to seed 0)
  // Exact check: distribution sums to 1.
  double sum = 0;
  for (double s : result.scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(PersonalizedPageRankTest, DuplicateSeedsCountOnce) {
  Random rng(3);
  const graph::Graph g = graph::BarabasiAlbert(50, 2, rng);
  const std::vector<graph::PageId> once = {3, 7};
  const std::vector<graph::PageId> dup = {3, 7, 3, 7, 7};
  PageRankOptions options;
  options.tolerance = 1e-13;
  const PageRankResult a = ComputePersonalizedPageRank(g, once, options);
  const PageRankResult b = ComputePersonalizedPageRank(g, dup, options);
  for (size_t p = 0; p < g.NumNodes(); ++p) {
    EXPECT_NEAR(a.scores[p], b.scores[p], 1e-12);
  }
}

}  // namespace
}  // namespace pagerank
}  // namespace jxp
