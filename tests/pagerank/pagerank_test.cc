#include "pagerank/pagerank.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "markov/dense_solver.h"

namespace jxp {
namespace pagerank {
namespace {

TEST(PageRankTest, UniformOnSymmetricCycle) {
  // A directed cycle is perfectly symmetric: all scores equal 1/n.
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  const graph::Graph g = builder.Build();
  PageRankOptions options;
  options.tolerance = 1e-14;
  const PageRankResult result = ComputePageRank(g, options);
  ASSERT_TRUE(result.converged);
  for (double s : result.scores) EXPECT_NEAR(s, 0.25, 1e-12);
}

TEST(PageRankTest, ScoresSumToOne) {
  Random rng(1);
  const graph::Graph g = graph::BarabasiAlbert(300, 3, rng);
  const PageRankResult result = ComputePageRank(g, PageRankOptions());
  ASSERT_TRUE(result.converged);
  double sum = 0;
  for (double s : result.scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankTest, AuthorityFlowsToLinkTarget) {
  // Star: many pages point at page 0.
  graph::GraphBuilder builder(10);
  for (graph::PageId u = 1; u < 10; ++u) builder.AddEdge(u, 0);
  builder.AddEdge(0, 1);
  const graph::Graph g = builder.Build();
  const PageRankResult result = ComputePageRank(g, PageRankOptions());
  for (graph::PageId u = 2; u < 10; ++u) {
    EXPECT_GT(result.scores[0], result.scores[u]);
  }
  // Page 1 receives all of page 0's endorsement: second highest.
  EXPECT_GT(result.scores[1], result.scores[2]);
}

TEST(PageRankTest, MatchesDenseSolverWithDanglingConvention) {
  // Verify the "dangling -> uniform" convention against a dense chain that
  // materializes it.
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  // Page 3 dangling.
  const graph::Graph g = builder.Build();
  const double eps = 0.85;
  const size_t n = 4;
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, (1 - eps) / n));
  auto add = [&](size_t u, size_t v, double w) { dense[u][v] += eps * w; };
  add(0, 1, 1);
  add(1, 2, 1);
  add(2, 0, 1);
  for (size_t v = 0; v < n; ++v) add(3, v, 1.0 / n);
  const auto exact = markov::ExactStationaryDistribution(dense);
  ASSERT_TRUE(exact.ok());

  PageRankOptions options;
  options.tolerance = 1e-14;
  const PageRankResult result = ComputePageRank(g, options);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(result.scores[i], exact.value()[i], 1e-10) << "page " << i;
  }
}

TEST(PageRankTest, DampingExtremes) {
  graph::GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(2, 0);
  const graph::Graph g = builder.Build();
  // Tiny damping: scores approach uniform.
  PageRankOptions near_jump;
  near_jump.damping = 0.01;
  const PageRankResult result = ComputePageRank(g, near_jump);
  for (double s : result.scores) EXPECT_NEAR(s, 1.0 / 3, 0.02);
}

TEST(PageRankTest, IterationCountReported) {
  Random rng(2);
  const graph::Graph g = graph::BarabasiAlbert(100, 2, rng);
  PageRankOptions options;
  options.max_iterations = 3;
  options.tolerance = 1e-16;
  const PageRankResult result = ComputePageRank(g, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3);
}

TEST(BuildLinkMatrixTest, RowsAreStochasticOrEmpty) {
  Random rng(3);
  const graph::Graph g = graph::BarabasiAlbert(50, 2, rng);
  const markov::SparseMatrix m = BuildLinkMatrix(g);
  for (uint32_t i = 0; i < m.NumStates(); ++i) {
    const double sum = m.RowSum(i);
    EXPECT_TRUE(std::abs(sum - 1.0) < 1e-12 || sum == 0.0) << "row " << i;
  }
}

}  // namespace
}  // namespace pagerank
}  // namespace jxp
