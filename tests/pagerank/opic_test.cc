#include "pagerank/opic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace pagerank {
namespace {

TEST(OpicTest, GreedyConvergesToPageRank) {
  Random rng(1);
  const graph::Graph g = graph::BarabasiAlbert(150, 3, rng);
  PageRankOptions pr_options;
  pr_options.tolerance = 1e-13;
  const PageRankResult truth = ComputePageRank(g, pr_options);

  OpicOptions options;
  options.num_visits = 400000;
  options.policy = OpicOptions::Policy::kGreedy;
  Random opic_rng(2);
  const OpicResult opic = ComputeOpic(g, options, opic_rng);
  ASSERT_EQ(opic.importance.size(), g.NumNodes());
  double worst = 0;
  for (size_t p = 0; p < g.NumNodes(); ++p) {
    worst = std::max(worst, std::abs(opic.importance[p] - truth.scores[p]) /
                                std::max(truth.scores[p], 1e-6));
  }
  EXPECT_LT(worst, 0.05) << "relative error too large";
}

TEST(OpicTest, RandomPolicyAlsoConverges) {
  Random rng(3);
  const graph::Graph g = graph::BarabasiAlbert(80, 3, rng);
  PageRankOptions pr_options;
  pr_options.tolerance = 1e-13;
  const PageRankResult truth = ComputePageRank(g, pr_options);

  OpicOptions options;
  options.num_visits = 600000;
  options.policy = OpicOptions::Policy::kRandom;
  Random opic_rng(4);
  const OpicResult opic = ComputeOpic(g, options, opic_rng);
  double total_error = 0;
  for (size_t p = 0; p < g.NumNodes(); ++p) {
    total_error += std::abs(opic.importance[p] - truth.scores[p]);
  }
  EXPECT_LT(total_error, 0.08);
}

TEST(OpicTest, HandlesDanglingPages) {
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  // Page 3 dangling.
  const graph::Graph g = builder.Build();
  PageRankOptions pr_options;
  pr_options.tolerance = 1e-13;
  const PageRankResult truth = ComputePageRank(g, pr_options);

  OpicOptions options;
  options.num_visits = 300000;
  Random rng(5);
  const OpicResult opic = ComputeOpic(g, options, rng);
  for (size_t p = 0; p < 4; ++p) {
    EXPECT_NEAR(opic.importance[p], truth.scores[p], 0.01) << "page " << p;
  }
}

TEST(OpicTest, ImportanceIsDistribution) {
  Random rng(6);
  const graph::Graph g = graph::BarabasiAlbert(60, 2, rng);
  OpicOptions options;
  options.num_visits = 10000;
  const OpicResult opic = ComputeOpic(g, options, rng);
  double sum = 0;
  for (double v : opic.importance) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace pagerank
}  // namespace jxp
