#include "pagerank/hits.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"

namespace jxp {
namespace pagerank {
namespace {

TEST(HitsTest, StarGraphSeparatesHubsAndAuthorities) {
  // Pages 1..9 all point at page 0: page 0 is the authority, 1..9 are hubs.
  graph::GraphBuilder builder(10);
  for (graph::PageId u = 1; u < 10; ++u) builder.AddEdge(u, 0);
  const graph::Graph g = builder.Build();
  const HitsResult result = ComputeHits(g, HitsOptions());
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.authority[0], 1.0, 1e-9);
  for (graph::PageId u = 1; u < 10; ++u) {
    EXPECT_NEAR(result.authority[u], 0.0, 1e-9);
    EXPECT_NEAR(result.hub[u], 1.0 / 9, 1e-9);
  }
  EXPECT_NEAR(result.hub[0], 0.0, 1e-9);
}

TEST(HitsTest, ScoresAreDistributions) {
  Random rng(7);
  const graph::Graph g = graph::BarabasiAlbert(300, 3, rng);
  const HitsResult result = ComputeHits(g, HitsOptions());
  double authority_sum = 0;
  double hub_sum = 0;
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    EXPECT_GE(result.authority[i], 0.0);
    EXPECT_GE(result.hub[i], 0.0);
    authority_sum += result.authority[i];
    hub_sum += result.hub[i];
  }
  EXPECT_NEAR(authority_sum, 1.0, 1e-9);
  EXPECT_NEAR(hub_sum, 1.0, 1e-9);
}

TEST(HitsTest, BipartiteCore) {
  // Hubs {0,1} both point to authorities {2,3,4}; symmetric weights.
  graph::GraphBuilder builder(5);
  for (graph::PageId h = 0; h < 2; ++h) {
    for (graph::PageId a = 2; a < 5; ++a) builder.AddEdge(h, a);
  }
  const graph::Graph g = builder.Build();
  const HitsResult result = ComputeHits(g, HitsOptions());
  EXPECT_NEAR(result.hub[0], 0.5, 1e-9);
  EXPECT_NEAR(result.hub[1], 0.5, 1e-9);
  for (graph::PageId a = 2; a < 5; ++a) EXPECT_NEAR(result.authority[a], 1.0 / 3, 1e-9);
}

TEST(HitsTest, IterationCapRespected) {
  Random rng(8);
  const graph::Graph g = graph::BarabasiAlbert(100, 2, rng);
  HitsOptions options;
  options.max_iterations = 2;
  options.tolerance = 0;
  const HitsResult result = ComputeHits(g, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 2);
}

}  // namespace
}  // namespace pagerank
}  // namespace jxp
