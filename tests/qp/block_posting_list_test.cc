#include "qp/block_posting_list.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace jxp {
namespace qp {
namespace {

using PostingIn = BlockPostingList::PostingIn;

std::vector<PostingIn> MakePostings(size_t count, uint64_t seed, uint32_t max_gap) {
  Random rng(seed);
  std::vector<PostingIn> postings;
  postings.reserve(count);
  uint32_t docid = static_cast<uint32_t>(rng.NextInRange(0, 3));
  for (size_t i = 0; i < count; ++i) {
    PostingIn p;
    p.docid = docid;
    p.tf = static_cast<uint32_t>(rng.NextInRange(1, 9));
    p.impact = (1.0 + std::log(static_cast<double>(p.tf))) * 2.3;
    p.prior = rng.NextDouble() * 1e-3;
    postings.push_back(p);
    docid += static_cast<uint32_t>(rng.NextInRange(1, static_cast<int>(max_gap)));
  }
  return postings;
}

TEST(VByteTest, RoundTripsBoundaryValues) {
  const uint32_t values[] = {0,      1,        127,        128,       16383, 16384,
                             999999, 0xffffffu, 0x0fffffffu, 0xffffffffu};
  std::vector<uint8_t> bytes;
  for (uint32_t v : values) VByteEncode(v, bytes);
  size_t offset = 0;
  for (uint32_t v : values) {
    EXPECT_EQ(VByteDecode(bytes.data(), offset), v);
  }
  EXPECT_EQ(offset, bytes.size());
}

TEST(VByteTest, SmallValuesAreOneByte) {
  std::vector<uint8_t> bytes;
  VByteEncode(127, bytes);
  EXPECT_EQ(bytes.size(), 1u);
  VByteEncode(128, bytes);
  EXPECT_EQ(bytes.size(), 3u);  // 127 took one byte; 128 takes two.
}

TEST(UpperBoundAsFloatTest, NeverRoundsBelow) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble() * std::pow(10.0, rng.NextInRange(-12, 12));
    const float f = UpperBoundAsFloat(v);
    EXPECT_GE(static_cast<double>(f), v);
  }
  EXPECT_EQ(UpperBoundAsFloat(0.0), 0.0f);
  EXPECT_EQ(UpperBoundAsFloat(1.0), 1.0f);  // Exactly representable.
}

TEST(BlockPostingListTest, CursorReconstructsAllPostings) {
  const auto postings = MakePostings(1000, 11, 50);
  const BlockPostingList list = BlockPostingList::Build(postings, 128);
  EXPECT_EQ(list.num_postings(), postings.size());
  EXPECT_EQ(list.num_blocks(), (postings.size() + 127) / 128);

  DecodeStats stats;
  BlockPostingList::Cursor cursor = list.OpenCursor(&stats);
  size_t i = 0;
  for (cursor.Next(); cursor.docid() != BlockPostingList::kEndDocid; cursor.Next()) {
    ASSERT_LT(i, postings.size());
    EXPECT_EQ(cursor.docid(), postings[i].docid);
    EXPECT_EQ(cursor.freq(), postings[i].tf);
    ++i;
  }
  EXPECT_EQ(i, postings.size());
  EXPECT_EQ(stats.postings_decoded, postings.size());
  EXPECT_EQ(stats.freqs_decoded, postings.size());
  EXPECT_EQ(stats.blocks_decoded, list.num_blocks());
  EXPECT_EQ(stats.blocks_skipped, 0u);
}

TEST(BlockPostingListTest, EmptyAndSingletonLists) {
  const BlockPostingList empty = BlockPostingList::Build({}, 128);
  EXPECT_EQ(empty.num_postings(), 0u);
  BlockPostingList::Cursor cursor = empty.OpenCursor(nullptr);
  cursor.Next();
  EXPECT_EQ(cursor.docid(), BlockPostingList::kEndDocid);
  EXPECT_FALSE(cursor.NextGEQ(0));

  // Docid 0 is legal for the first posting (delta 0 from the implicit base).
  const std::vector<PostingIn> one = {{0, 3, 1.0, 0.0}};
  const BlockPostingList single = BlockPostingList::Build(one, 128);
  BlockPostingList::Cursor c2 = single.OpenCursor(nullptr);
  c2.Next();
  EXPECT_EQ(c2.docid(), 0u);
  EXPECT_EQ(c2.freq(), 3u);
  c2.Next();
  EXPECT_EQ(c2.docid(), BlockPostingList::kEndDocid);
}

TEST(BlockPostingListTest, NextGEQMatchesLinearScan) {
  const auto postings = MakePostings(700, 12, 40);
  const BlockPostingList list = BlockPostingList::Build(postings, 64);
  Random rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t target = static_cast<uint32_t>(
        rng.NextInRange(0, static_cast<int>(postings.back().docid) + 100));
    BlockPostingList::Cursor cursor = list.OpenCursor(nullptr);
    const bool found = cursor.NextGEQ(target);
    const auto it = std::lower_bound(
        postings.begin(), postings.end(), target,
        [](const PostingIn& p, uint32_t t) { return p.docid < t; });
    if (it == postings.end()) {
      EXPECT_FALSE(found);
      EXPECT_EQ(cursor.docid(), BlockPostingList::kEndDocid);
    } else {
      ASSERT_TRUE(found);
      EXPECT_EQ(cursor.docid(), it->docid);
      EXPECT_EQ(cursor.freq(), it->tf);
    }
  }
}

TEST(BlockPostingListTest, ForwardSeekSequenceIsConsistent) {
  const auto postings = MakePostings(900, 14, 30);
  const BlockPostingList list = BlockPostingList::Build(postings, 64);
  Random rng(15);
  // Strictly forward NextGEQ interleaved with Next, compared to the array.
  BlockPostingList::Cursor cursor = list.OpenCursor(nullptr);
  size_t pos = 0;
  cursor.Next();
  while (pos < postings.size()) {
    ASSERT_EQ(cursor.docid(), postings[pos].docid);
    if (rng.NextInRange(0, 1) == 0) {
      cursor.Next();
      ++pos;
    } else {
      const size_t jump = pos + static_cast<size_t>(rng.NextInRange(1, 120));
      if (jump >= postings.size()) break;
      const uint32_t target = postings[jump].docid;
      ASSERT_TRUE(cursor.NextGEQ(target));
      pos = jump;
    }
  }
}

TEST(BlockPostingListTest, SkipsBlocksWithoutDecoding) {
  const auto postings = MakePostings(128 * 20, 16, 20);
  const BlockPostingList list = BlockPostingList::Build(postings, 128);
  DecodeStats stats;
  BlockPostingList::Cursor cursor = list.OpenCursor(&stats);
  // Jump straight to the last posting: every block but the last one should
  // be skipped on metadata alone.
  ASSERT_TRUE(cursor.NextGEQ(postings.back().docid));
  EXPECT_EQ(cursor.docid(), postings.back().docid);
  EXPECT_EQ(stats.blocks_decoded, 1u);
  EXPECT_EQ(stats.blocks_skipped, list.num_blocks() - 1);
  EXPECT_EQ(stats.postings_decoded, list.num_postings() - 128 * (list.num_blocks() - 1));
}

TEST(BlockPostingListTest, SeekBlockReportsTrueUpperBounds) {
  const auto postings = MakePostings(1000, 17, 25);
  const BlockPostingList list = BlockPostingList::Build(postings, 128);
  Random rng(18);
  for (int trial = 0; trial < 100; ++trial) {
    const uint32_t target = static_cast<uint32_t>(
        rng.NextInRange(0, static_cast<int>(postings.back().docid)));
    DecodeStats stats;
    BlockPostingList::Cursor cursor = list.OpenCursor(&stats);
    float max_impact = -1;
    float max_prior = -1;
    if (!cursor.SeekBlock(target, &max_impact, &max_prior)) continue;
    // A shallow seek must not decompress anything.
    EXPECT_EQ(stats.blocks_decoded, 0u);
    EXPECT_EQ(stats.postings_decoded, 0u);
    // The bounds must dominate every posting of the block the target falls
    // into (pruning invariant: block upper bound >= any score inside).
    ASSERT_TRUE(cursor.NextGEQ(target));
    const uint32_t landed = cursor.docid();
    const auto it = std::lower_bound(
        postings.begin(), postings.end(), landed,
        [](const PostingIn& p, uint32_t t) { return p.docid < t; });
    ASSERT_NE(it, postings.end());
    EXPECT_GE(static_cast<double>(max_impact), it->impact);
    EXPECT_GE(static_cast<double>(max_prior), it->prior);
  }
}

TEST(BlockPostingListTest, NextAfterSeekBlockDecodesTheRightBlock) {
  const auto postings = MakePostings(128 * 4, 19, 10);
  const BlockPostingList list = BlockPostingList::Build(postings, 128);
  BlockPostingList::Cursor cursor = list.OpenCursor(nullptr);
  float mi = 0;
  float mp = 0;
  // Seek into the third block, then advance with Next(): the cursor must
  // land on the first posting of that block, not stale state.
  const uint32_t target = postings[2 * 128 + 5].docid;
  ASSERT_TRUE(cursor.SeekBlock(target, &mi, &mp));
  cursor.Next();
  EXPECT_EQ(cursor.docid(), postings[2 * 128].docid);
}

TEST(BlockPostingListTest, MaximaAreUpperBounds) {
  const auto postings = MakePostings(500, 20, 60);
  const BlockPostingList list = BlockPostingList::Build(postings, 128);
  double max_impact = 0;
  double max_prior = 0;
  for (const PostingIn& p : postings) {
    max_impact = std::max(max_impact, p.impact);
    max_prior = std::max(max_prior, p.prior);
  }
  EXPECT_GE(static_cast<double>(list.max_impact()), max_impact);
  EXPECT_GE(static_cast<double>(list.max_prior()), max_prior);
}

TEST(BlockPostingListTest, CompressesBelowUncompressedBaseline) {
  // Dense docids and small tfs: the realistic shape of per-peer lists.
  const auto postings = MakePostings(4000, 21, 8);
  const BlockPostingList list = BlockPostingList::Build(postings, 128);
  const double bytes_per_posting =
      static_cast<double>(list.docid_bytes() + list.freq_bytes() + list.metadata_bytes()) /
      static_cast<double>(list.num_postings());
  EXPECT_LT(bytes_per_posting, 8.0);
}

}  // namespace
}  // namespace qp
}  // namespace jxp
