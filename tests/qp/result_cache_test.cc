#include "qp/result_cache.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace jxp {
namespace qp {
namespace {

using Lru = DeterministicLru<int, std::string>;

std::vector<int> KeysOf(const Lru& cache) { return cache.Keys(); }

TEST(ResultCacheTest, GetReturnsStoredValue) {
  Lru cache(4);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, "one");
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), "one");
  cache.Put(1, "uno");  // Overwrite in place.
  EXPECT_EQ(*cache.Get(1), "uno");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, EvictionOrderIsPureFunctionOfCallSequence) {
  // The exact scenario twice must leave the cache in the exact same state —
  // no clocks, no randomized admission.
  for (int round = 0; round < 2; ++round) {
    Lru cache(3);
    cache.Put(1, "a");
    cache.Put(2, "b");
    cache.Put(3, "c");
    EXPECT_EQ(KeysOf(cache), (std::vector<int>{3, 2, 1}));

    // Touching 1 makes it most-recent; inserting 4 must evict 2 (now LRU).
    ASSERT_NE(cache.Get(1), nullptr);
    cache.Put(4, "d");
    EXPECT_EQ(KeysOf(cache), (std::vector<int>{4, 1, 3}));
    EXPECT_EQ(cache.Get(2), nullptr);

    // Re-Put of an existing key refreshes recency without eviction.
    cache.Put(3, "c2");
    EXPECT_EQ(KeysOf(cache), (std::vector<int>{3, 4, 1}));
    cache.Put(5, "e");  // Evicts 1.
    EXPECT_EQ(KeysOf(cache), (std::vector<int>{5, 3, 4}));
    EXPECT_EQ(cache.Get(1), nullptr);
    EXPECT_EQ(cache.size(), 3u);
  }
}

TEST(ResultCacheTest, ZeroCapacityDisablesTheCache) {
  Lru cache(0);
  cache.Put(1, "a");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(ResultCacheTest, ClearEmptiesEverything) {
  Lru cache(2);
  cache.Put(1, "a");
  cache.Put(2, "b");
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(3, "c");
  EXPECT_EQ(KeysOf(cache), (std::vector<int>{3}));
}

TEST(ResultCacheTest, TermSequenceHashIsOrderSensitive) {
  TermSequenceHash hash;
  const std::vector<search::TermId> ab = {1, 2};
  const std::vector<search::TermId> ba = {2, 1};
  EXPECT_NE(hash(ab), hash(ba));
  EXPECT_EQ(hash(ab), hash(std::vector<search::TermId>{1, 2}));
}

}  // namespace
}  // namespace qp
}  // namespace jxp
