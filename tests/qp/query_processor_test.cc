#include "qp/query_processor.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "search/engine.h"

namespace jxp {
namespace qp {
namespace {

/// One peer holding every document, frozen both ways.
struct QpFixture {
  explicit QpFixture(double prior_weight = 0.0) {
    Random rng(61);
    graph::WebGraphParams params;
    params.num_nodes = 1500;
    params.num_categories = 4;
    collection = graph::GenerateWebGraph(params, rng);
    search::CorpusOptions coptions;
    coptions.vocabulary_size = 4000;
    coptions.category_vocab_size = 500;
    corpus = search::Corpus::Generate(collection, coptions, 62);
    index = std::make_unique<search::PeerIndex>(0);
    for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
      index->AddDocument(corpus.DocumentFor(p));
      jxp_scores[p] = 0.85 / (1.0 + static_cast<double>((p * 2654435761u) % 1000));
    }
    engine = std::make_unique<search::MinervaEngine>(&corpus, search::SearchOptions());
    CompressedIndexOptions copts;
    copts.prior_weight = prior_weight;
    frozen = std::make_unique<CompressedPeerIndex>(CompressedPeerIndex::Freeze(
        *index, corpus, prior_weight == 0.0 ? decltype(jxp_scores){} : jxp_scores,
        copts));
  }

  /// Exhaustive uncompressed reference with the documented tie-break.
  /// tfidf comes from MinervaEngine::TfIdfScore (the canonical scorer);
  /// fusion follows the qp model.
  TopKList BruteForce(std::span<const search::TermId> query, size_t k) const {
    const double w = frozen->prior_weight();
    std::unordered_map<graph::PageId, double> scores;
    for (search::TermId term : query) {
      if (const std::vector<search::Posting>* postings = index->PostingsFor(term)) {
        for (const search::Posting& posting : *postings) {
          if (!scores.count(posting.page)) {
            const double tfidf =
                engine->TfIdfScore(query, corpus.DocumentFor(posting.page));
            scores[posting.page] =
                w == 0.0 ? tfidf : (1.0 - w) * tfidf + w * frozen->PriorOf(posting.page);
          }
        }
      }
    }
    std::vector<std::pair<graph::PageId, double>> ranked(scores.begin(), scores.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return BetterResult(a.second, a.first, b.second, b.first);
    });
    if (ranked.size() > k) ranked.resize(k);
    return ranked;
  }

  std::vector<search::TermId> SampleQuery(int trial, Random& rng) const {
    return corpus.SampleQueryTerms(static_cast<graph::CategoryId>(trial % 4),
                                   2 + trial % 3, rng);
  }

  graph::CategorizedGraph collection;
  search::Corpus corpus;
  std::unique_ptr<search::PeerIndex> index;
  std::unordered_map<graph::PageId, double> jxp_scores;
  std::unique_ptr<search::MinervaEngine> engine;
  std::unique_ptr<CompressedPeerIndex> frozen;
};

TEST(ExhaustiveTopKTest, BitIdenticalToUncompressedBruteForce) {
  QpFixture fx;
  Random rng(63);
  for (int trial = 0; trial < 8; ++trial) {
    const auto query = fx.SampleQuery(trial, rng);
    const TopKList got = ExhaustiveTopK(*fx.frozen, query, 10, nullptr);
    const TopKList want = fx.BruteForce(query, 10);
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first) << "trial " << trial << " rank " << i;
      // Exact double equality: the compressed path must reproduce the
      // engine's scoring arithmetic bit for bit.
      EXPECT_EQ(got[i].second, want[i].second) << "trial " << trial << " rank " << i;
    }
  }
}

TEST(MaxScoreTopKTest, BitIdenticalToExhaustive) {
  QpFixture fx;
  Random rng(64);
  for (int trial = 0; trial < 10; ++trial) {
    const auto query = fx.SampleQuery(trial, rng);
    for (size_t k : {1u, 3u, 10u, 100u}) {
      const TopKList oracle = ExhaustiveTopK(*fx.frozen, query, k, nullptr);
      const TopKList fast = MaxScoreTopK(*fx.frozen, query, k, nullptr);
      ASSERT_EQ(fast.size(), oracle.size()) << "trial " << trial << " k " << k;
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(fast[i].first, oracle[i].first)
            << "trial " << trial << " k " << k << " rank " << i;
        EXPECT_EQ(fast[i].second, oracle[i].second)
            << "trial " << trial << " k " << k << " rank " << i;
      }
    }
  }
}

TEST(MaxScoreTopKTest, BitIdenticalToExhaustiveWithPriorFusion) {
  QpFixture fx(/*prior_weight=*/0.4);
  Random rng(65);
  for (int trial = 0; trial < 10; ++trial) {
    const auto query = fx.SampleQuery(trial, rng);
    const TopKList oracle = ExhaustiveTopK(*fx.frozen, query, 10, nullptr);
    const TopKList fast = MaxScoreTopK(*fx.frozen, query, 10, nullptr);
    const TopKList want = fx.BruteForce(query, 10);
    ASSERT_EQ(oracle.size(), want.size());
    ASSERT_EQ(fast.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(oracle[i].first, want[i].first) << "trial " << trial << " rank " << i;
      EXPECT_EQ(oracle[i].second, want[i].second) << "trial " << trial << " rank " << i;
      EXPECT_EQ(fast[i].first, want[i].first) << "trial " << trial << " rank " << i;
      EXPECT_EQ(fast[i].second, want[i].second) << "trial " << trial << " rank " << i;
    }
  }
}

TEST(MaxScoreTopKTest, DecodesFewerPostingsThanExhaustive) {
  QpFixture fx;
  Random rng(66);
  size_t trials_with_pruning = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto query = fx.SampleQuery(trial, rng);
    QueryStats oracle_stats;
    QueryStats fast_stats;
    ExhaustiveTopK(*fx.frozen, query, 10, &oracle_stats);
    MaxScoreTopK(*fx.frozen, query, 10, &fast_stats);
    EXPECT_LE(fast_stats.decode.postings_decoded, oracle_stats.decode.postings_decoded);
    if (fast_stats.decode.postings_decoded < oracle_stats.decode.postings_decoded) {
      ++trials_with_pruning;
    }
  }
  // Dynamic pruning must actually prune on typical topical queries.
  EXPECT_GT(trials_with_pruning, 0u);
}

TEST(MaxScoreTopKTest, PrimedThresholdPreservesTopK) {
  // Prime with a deflated true k-th score — the tightest threshold any
  // caller may legally supply. The primed run must return the exact same
  // list while never decoding more.
  QpFixture fx;
  Random rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    const auto query = fx.SampleQuery(trial, rng);
    QueryStats cold_stats;
    const TopKList cold = MaxScoreTopK(*fx.frozen, query, 10, &cold_stats);
    if (cold.size() < 10 || cold.back().second <= 0) continue;
    MaxScoreOptions options;
    options.primed_threshold = cold.back().second * (1.0 - 1e-12);
    QueryStats primed_stats;
    const TopKList primed = MaxScoreTopK(*fx.frozen, query, 10, options, &primed_stats);
    ASSERT_EQ(primed.size(), cold.size()) << "trial " << trial;
    for (size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(primed[i].first, cold[i].first) << "trial " << trial << " rank " << i;
      EXPECT_EQ(primed[i].second, cold[i].second) << "trial " << trial << " rank " << i;
    }
    EXPECT_LE(primed_stats.decode.postings_decoded, cold_stats.decode.postings_decoded)
        << "trial " << trial;
  }
}

TEST(MaxScoreTopKTest, LiveBlockSkippingCutsDecodeOnSelectiveQueries) {
  // Fine-grained blocks + single-term queries: blocks whose max impact falls
  // below the primed threshold form dead ranges the candidate loop must jump
  // over without decoding. Results stay bit-identical throughout.
  QpFixture fx;
  CompressedIndexOptions copts;
  copts.block_size = 16;
  const CompressedPeerIndex fine = CompressedPeerIndex::Freeze(
      *fx.index, fx.corpus, {}, copts);

  size_t skipped_live_total = 0;
  size_t cold_postings = 0;
  size_t primed_postings = 0;
  size_t dead_ranges_total = 0;
  for (const auto& [term, postings] : fx.index->postings()) {
    if (postings.size() < 200) continue;
    const std::vector<search::TermId> query = {term};
    QueryStats cold_stats;
    const TopKList cold = MaxScoreTopK(fine, query, 10, &cold_stats);
    if (cold.size() < 10 || cold.back().second <= 0) continue;
    MaxScoreOptions options;
    options.primed_threshold = cold.back().second * (1.0 - 1e-12);
    QueryStats primed_stats;
    const TopKList primed = MaxScoreTopK(fine, query, 10, options, &primed_stats);
    ASSERT_EQ(primed.size(), cold.size());
    for (size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(primed[i].first, cold[i].first) << "rank " << i;
      EXPECT_EQ(primed[i].second, cold[i].second) << "rank " << i;
    }
    skipped_live_total += primed_stats.decode.blocks_skipped_live;
    dead_ranges_total += primed_stats.dead_ranges;
    cold_postings += cold_stats.decode.postings_decoded;
    primed_postings += primed_stats.decode.postings_decoded;
  }
  ASSERT_GT(cold_postings, 0u) << "no selective term found; corpus too diverse";
  // Liveness must fire: dead ranges found, blocks skipped because of them,
  // and strictly fewer postings materialized.
  EXPECT_GT(dead_ranges_total, 0u);
  EXPECT_GT(skipped_live_total, 0u);
  EXPECT_LT(primed_postings, cold_postings);
}

TEST(MaxScoreTopKTest, LivenessOffMatchesLivenessOn) {
  QpFixture fx;
  Random rng(68);
  for (int trial = 0; trial < 6; ++trial) {
    const auto query = fx.SampleQuery(trial, rng);
    MaxScoreOptions off;
    off.live_blocks = false;
    const TopKList with_ranges = MaxScoreTopK(*fx.frozen, query, 10, nullptr);
    const TopKList without = MaxScoreTopK(*fx.frozen, query, 10, off, nullptr);
    ASSERT_EQ(with_ranges.size(), without.size()) << "trial " << trial;
    for (size_t i = 0; i < without.size(); ++i) {
      EXPECT_EQ(with_ranges[i].first, without[i].first) << "trial " << trial;
      EXPECT_EQ(with_ranges[i].second, without[i].second) << "trial " << trial;
    }
  }
}

TEST(QueryProcessorTest, EmptyAndUnknownQueries) {
  QpFixture fx;
  const std::vector<search::TermId> empty;
  EXPECT_TRUE(ExhaustiveTopK(*fx.frozen, empty, 5, nullptr).empty());
  EXPECT_TRUE(MaxScoreTopK(*fx.frozen, empty, 5, nullptr).empty());
  const std::vector<search::TermId> unknown = {static_cast<search::TermId>(99999),
                                               static_cast<search::TermId>(99998)};
  EXPECT_TRUE(ExhaustiveTopK(*fx.frozen, unknown, 5, nullptr).empty());
  EXPECT_TRUE(MaxScoreTopK(*fx.frozen, unknown, 5, nullptr).empty());
}

TEST(QueryProcessorTest, KLargerThanCandidateSet) {
  QpFixture fx;
  // The rarest indexed term: k far above its document frequency.
  search::TermId rare = 0;
  size_t best_df = ~size_t{0};
  for (const auto& [term, postings] : fx.index->postings()) {
    if (!postings.empty() && postings.size() < best_df) {
      best_df = postings.size();
      rare = term;
    }
  }
  const std::vector<search::TermId> query = {rare};
  const TopKList oracle = ExhaustiveTopK(*fx.frozen, query, 10000, nullptr);
  const TopKList fast = MaxScoreTopK(*fx.frozen, query, 10000, nullptr);
  EXPECT_EQ(oracle.size(), best_df);
  ASSERT_EQ(fast.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(fast[i].first, oracle[i].first);
    EXPECT_EQ(fast[i].second, oracle[i].second);
  }
}

TEST(QueryProcessorTest, TieBreakIsPageAscending) {
  QpFixture fx;
  // A single-term query scores every matching document (1 + log tf) * idf:
  // documents sharing the term frequency tie *exactly*. Find a term and a k
  // where the tie straddles the cutoff, and require page-ascending order.
  for (const auto& [term, postings] : fx.index->postings()) {
    if (postings.size() < 8) continue;
    const std::vector<search::TermId> query = {term};
    const TopKList all =
        ExhaustiveTopK(*fx.frozen, query, postings.size(), nullptr);
    // Locate a run of tied scores.
    size_t run_start = 0;
    for (size_t i = 1; i <= all.size(); ++i) {
      if (i == all.size() || all[i].second != all[run_start].second) {
        if (i - run_start >= 2) {
          // Cut inside the run: the kept prefix must be the smallest pages.
          const size_t k = run_start + (i - run_start) / 2 + 1;
          const TopKList cut = ExhaustiveTopK(*fx.frozen, query, k, nullptr);
          const TopKList fast = MaxScoreTopK(*fx.frozen, query, k, nullptr);
          ASSERT_EQ(cut.size(), k);
          ASSERT_EQ(fast.size(), k);
          for (size_t j = 0; j < k; ++j) {
            EXPECT_EQ(cut[j].first, all[j].first);
            EXPECT_EQ(fast[j].first, all[j].first);
          }
          // Within the tie run, pages ascend.
          for (size_t j = run_start + 1; j < k; ++j) {
            EXPECT_LT(cut[j - 1].first, cut[j].first);
          }
          return;  // One straddled tie exercised: done.
        }
        run_start = i;
      }
    }
  }
  FAIL() << "no tied score run found; corpus parameters too diverse";
}

}  // namespace
}  // namespace qp
}  // namespace jxp
