#include "qp/compressed_index.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"

namespace jxp {
namespace qp {
namespace {

struct FreezeFixture {
  FreezeFixture() {
    Random rng(51);
    graph::WebGraphParams params;
    params.num_nodes = 800;
    params.num_categories = 4;
    collection = graph::GenerateWebGraph(params, rng);
    search::CorpusOptions coptions;
    coptions.vocabulary_size = 3000;
    coptions.category_vocab_size = 400;
    corpus = search::Corpus::Generate(collection, coptions, 52);
    index = std::make_unique<search::PeerIndex>(3);
    for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
      index->AddDocument(corpus.DocumentFor(p));
      jxp_scores[p] = 1.0 / (1.0 + static_cast<double>(p));
    }
  }

  graph::CategorizedGraph collection;
  search::Corpus corpus;
  std::unique_ptr<search::PeerIndex> index;
  std::unordered_map<graph::PageId, double> jxp_scores;
};

TEST(CompressedIndexTest, FreezePreservesEveryPosting) {
  FreezeFixture fx;
  const CompressedPeerIndex frozen =
      CompressedPeerIndex::Freeze(*fx.index, fx.corpus, {}, CompressedIndexOptions{});
  EXPECT_EQ(frozen.owner(), fx.index->owner());
  EXPECT_EQ(frozen.num_terms(), fx.index->postings().size());

  size_t total_postings = 0;
  for (const auto& [term, postings] : fx.index->postings()) {
    const CompressedPeerIndex::TermList* entry = frozen.ListFor(term);
    ASSERT_NE(entry, nullptr) << "term " << term;
    ASSERT_EQ(entry->list.num_postings(), postings.size());
    BlockPostingList::Cursor cursor = entry->list.OpenCursor(nullptr);
    size_t i = 0;
    for (cursor.Next(); cursor.docid() != BlockPostingList::kEndDocid; cursor.Next()) {
      EXPECT_EQ(cursor.docid(), postings[i].page);
      EXPECT_EQ(cursor.freq(), postings[i].tf);
      ++i;
    }
    EXPECT_EQ(i, postings.size());
    total_postings += postings.size();
  }
  EXPECT_EQ(frozen.stats().num_postings, total_postings);
}

TEST(CompressedIndexTest, IdfMatchesEngineFormula) {
  FreezeFixture fx;
  const CompressedPeerIndex frozen =
      CompressedPeerIndex::Freeze(*fx.index, fx.corpus, {}, CompressedIndexOptions{});
  const double n = static_cast<double>(fx.corpus.NumDocuments());
  for (const auto& [term, postings] : fx.index->postings()) {
    const CompressedPeerIndex::TermList* entry = frozen.ListFor(term);
    ASSERT_NE(entry, nullptr);
    const double expected =
        std::log(n / static_cast<double>(fx.corpus.DocumentFrequency(term)));
    // Bit-identical, not just close: the qp scorers must reproduce
    // MinervaEngine's doubles exactly.
    EXPECT_EQ(entry->idf, expected) << "term " << term;
  }
}

TEST(CompressedIndexTest, PriorsAreExactAndBounded) {
  FreezeFixture fx;
  CompressedIndexOptions options;
  options.prior_weight = 0.4;
  const CompressedPeerIndex frozen =
      CompressedPeerIndex::Freeze(*fx.index, fx.corpus, fx.jxp_scores, options);
  EXPECT_EQ(frozen.prior_weight(), 0.4);
  for (const auto& [page, score] : fx.jxp_scores) {
    EXPECT_EQ(frozen.PriorOf(page), score);
    EXPECT_GE(static_cast<double>(frozen.max_prior_bound()), score);
  }
  EXPECT_EQ(frozen.PriorOf(graph::kInvalidPage), 0.0);
}

TEST(CompressedIndexTest, UnknownTermHasNoList) {
  FreezeFixture fx;
  const CompressedPeerIndex frozen =
      CompressedPeerIndex::Freeze(*fx.index, fx.corpus, {}, CompressedIndexOptions{});
  EXPECT_EQ(frozen.ListFor(static_cast<search::TermId>(999999)), nullptr);
}

TEST(CompressedIndexTest, CompresssedBytesPerPostingBeatBaseline) {
  FreezeFixture fx;
  const CompressedPeerIndex frozen =
      CompressedPeerIndex::Freeze(*fx.index, fx.corpus, {}, CompressedIndexOptions{});
  const CompressedIndexStats& stats = frozen.stats();
  EXPECT_GT(stats.num_postings, 0u);
  EXPECT_LT(stats.CompressedBytesPerPosting(),
            CompressedIndexStats::kUncompressedBytesPerPosting);
}

TEST(CompressedIndexTest, FreezeIsDeterministic) {
  FreezeFixture fx;
  CompressedIndexOptions options;
  options.prior_weight = 0.4;
  const CompressedPeerIndex a =
      CompressedPeerIndex::Freeze(*fx.index, fx.corpus, fx.jxp_scores, options);
  const CompressedPeerIndex b =
      CompressedPeerIndex::Freeze(*fx.index, fx.corpus, fx.jxp_scores, options);
  EXPECT_EQ(a.stats().num_postings, b.stats().num_postings);
  EXPECT_EQ(a.stats().num_blocks, b.stats().num_blocks);
  EXPECT_EQ(a.stats().docid_bytes, b.stats().docid_bytes);
  EXPECT_EQ(a.stats().freq_bytes, b.stats().freq_bytes);
  EXPECT_EQ(a.max_prior_bound(), b.max_prior_bound());
}

TEST(CompressedIndexStatsTest, MergeAccumulates) {
  CompressedIndexStats a;
  a.num_postings = 10;
  a.docid_bytes = 15;
  a.freq_bytes = 10;
  a.block_metadata_bytes = 22;
  CompressedIndexStats b;
  b.num_postings = 30;
  b.docid_bytes = 45;
  b.freq_bytes = 30;
  b.block_metadata_bytes = 22;
  a.MergeFrom(b);
  EXPECT_EQ(a.num_postings, 40u);
  EXPECT_DOUBLE_EQ(a.CompressedBytesPerPosting(), (60.0 + 40.0 + 44.0) / 40.0);
}

}  // namespace
}  // namespace qp
}  // namespace jxp
