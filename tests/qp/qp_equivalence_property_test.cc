#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "proptest.h"
#include "qp/serving.h"
#include "search/engine.h"

namespace jxp {
namespace qp {
namespace {

/// One randomized equivalence scenario: a corpus over a generated web graph,
/// a peer partition with replication, and a batch of topical queries.
struct EquivalenceCase {
  uint64_t seed = 0;
  size_t num_nodes = 600;
  size_t num_peers = 3;
  size_t num_queries = 6;
  size_t k = 10;

  std::string Describe() const {
    std::ostringstream os;
    os << "seed=" << seed << " nodes=" << num_nodes << " peers=" << num_peers
       << " queries=" << num_queries << " k=" << k;
    return os.str();
  }

  std::vector<EquivalenceCase> Shrink() const {
    std::vector<EquivalenceCase> out;
    if (num_nodes > 150) {
      EquivalenceCase c = *this;
      c.num_nodes /= 2;
      out.push_back(c);
    }
    if (num_peers > 1) {
      EquivalenceCase c = *this;
      c.num_peers = 1;
      out.push_back(c);
    }
    if (num_queries > 1) {
      EquivalenceCase c = *this;
      c.num_queries = 1;
      out.push_back(c);
    }
    return out;
  }
};

EquivalenceCase MakeCase(uint64_t seed) {
  Random rng(seed);
  EquivalenceCase c;
  c.seed = seed;
  c.num_nodes = 200 + static_cast<size_t>(rng.NextBounded(600));
  c.num_peers = 1 + static_cast<size_t>(rng.NextBounded(4));
  c.num_queries = 3 + static_cast<size_t>(rng.NextBounded(5));
  c.k = 1 + static_cast<size_t>(rng.NextBounded(20));
  return c;
}

struct BuiltCase {
  graph::CategorizedGraph collection;
  search::Corpus corpus;
  std::vector<std::vector<graph::PageId>> partitions;
  std::vector<std::unique_ptr<search::PeerIndex>> indexes;
  std::vector<ServedQuery> queries;
};

BuiltCase BuildCase(const EquivalenceCase& c) {
  BuiltCase built;
  Random rng(c.seed ^ 0x9e3779b97f4a7c15ull);
  graph::WebGraphParams params;
  params.num_nodes = c.num_nodes;
  params.num_categories = 3;
  built.collection = graph::GenerateWebGraph(params, rng);
  search::CorpusOptions coptions;
  coptions.vocabulary_size = 2500;
  coptions.category_vocab_size = 350;
  built.corpus = search::Corpus::Generate(built.collection, coptions, c.seed + 1);
  // Round-robin partition plus a replicated band at the front of each peer
  // (cross-peer duplicates must dedup identically everywhere).
  built.partitions.resize(c.num_peers);
  for (graph::PageId p = 0; p < c.num_nodes; ++p) {
    built.partitions[p % c.num_peers].push_back(p);
    if (p < 20 && c.num_peers > 1) {
      built.partitions[(p + 1) % c.num_peers].push_back(p);
    }
  }
  for (size_t peer = 0; peer < c.num_peers; ++peer) {
    auto index = std::make_unique<search::PeerIndex>(static_cast<p2p::PeerId>(peer));
    for (graph::PageId p : built.partitions[peer]) {
      index->AddDocument(built.corpus.DocumentFor(p));
    }
    built.indexes.push_back(std::move(index));
  }
  Random qrng(c.seed + 2);
  for (size_t i = 0; i < c.num_queries; ++i) {
    ServedQuery query;
    query.terms = built.corpus.SampleQueryTerms(
        static_cast<graph::CategoryId>(i % 3), 2 + i % 3, qrng);
    built.queries.push_back(std::move(query));
  }
  return built;
}

std::optional<std::string> CompareBatches(const std::vector<ServedResult>& a,
                                          const std::vector<ServedResult>& b,
                                          const char* label) {
  if (a.size() != b.size()) return std::string(label) + ": batch size mismatch";
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].results.size() != b[q].results.size()) {
      std::ostringstream os;
      os << label << ": query " << q << " size " << a[q].results.size() << " vs "
         << b[q].results.size();
      return os.str();
    }
    for (size_t i = 0; i < a[q].results.size(); ++i) {
      if (a[q].results[i].first != b[q].results[i].first ||
          a[q].results[i].second != b[q].results[i].second) {
        std::ostringstream os;
        os << label << ": query " << q << " rank " << i << " ("
           << a[q].results[i].first << ", " << a[q].results[i].second << ") vs ("
           << b[q].results[i].first << ", " << b[q].results[i].second << ")";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

/// The tentpole equivalence: MaxScore over compressed lists, exhaustive over
/// compressed lists, TA over the mutable index, and both MinervaEngine
/// retrieval paths return identical pages AND scores, at 1 and 4 threads.
TEST(QpEquivalenceProperty, AllPathsReturnIdenticalTopK) {
  proptest::ForAll<EquivalenceCase>(
      /*default_seed=*/9260612, /*default_cases=*/10, MakeCase,
      [](const EquivalenceCase& c) -> proptest::CheckResult {
        const BuiltCase built = BuildCase(c);

        // Serving arms at 1 and 4 threads.
        std::vector<std::vector<ServedResult>> arms;
        for (const ProcessorKind kind :
             {ProcessorKind::kExhaustive, ProcessorKind::kThresholdAlgorithm,
              ProcessorKind::kMaxScore}) {
          for (const size_t threads : {size_t{1}, size_t{4}}) {
            ServingOptions options;
            options.processor = kind;
            options.k = c.k;
            options.num_threads = threads;
            QueryServer server(&built.corpus, options);
            for (const auto& index : built.indexes) {
              server.AddPeer(index.get(), {}, CompressedIndexOptions{});
            }
            arms.push_back(server.ServeBatch(built.queries));
          }
        }
        for (size_t arm = 1; arm < arms.size(); ++arm) {
          if (auto mismatch = CompareBatches(arms[0], arms[arm], "serving arm")) {
            return *mismatch;
          }
        }

        // Engine-level equivalence: the use_compressed_index switch must not
        // change a single bit of ExecuteQuery's output.
        search::SearchOptions base;
        base.jxp_weight = 0.4;
        search::SearchOptions compressed_options = base;
        compressed_options.use_compressed_index = true;
        search::SearchOptions ta_options = base;
        ta_options.use_threshold_algorithm = true;
        search::MinervaEngine plain(&built.corpus, base);
        search::MinervaEngine compressed(&built.corpus, compressed_options);
        search::MinervaEngine threshold(&built.corpus, ta_options);
        for (size_t peer = 0; peer < built.indexes.size(); ++peer) {
          plain.AddPeer(static_cast<p2p::PeerId>(peer), built.partitions[peer]);
          compressed.AddPeer(static_cast<p2p::PeerId>(peer), built.partitions[peer]);
          threshold.AddPeer(static_cast<p2p::PeerId>(peer), built.partitions[peer]);
        }
        std::unordered_map<graph::PageId, double> jxp_scores;
        Random prng(c.seed + 3);
        for (graph::PageId p = 0; p < c.num_nodes; ++p) {
          jxp_scores[p] = prng.NextDouble() / static_cast<double>(c.num_nodes);
        }
        for (const ServedQuery& query : built.queries) {
          const auto want =
              plain.ExecuteQuery(query.terms, jxp_scores, search::RoutingPolicy::kJxpAuthority);
          for (const auto* engine : {&compressed, &threshold}) {
            const auto got = engine->ExecuteQuery(query.terms, jxp_scores,
                                                  search::RoutingPolicy::kJxpAuthority);
            if (got.size() != want.size()) return std::string("engine: size mismatch");
            for (size_t i = 0; i < want.size(); ++i) {
              if (got[i].page != want[i].page || got[i].tfidf != want[i].tfidf ||
                  got[i].fused != want[i].fused) {
                std::ostringstream os;
                os << "engine: rank " << i << " page " << got[i].page << " vs "
                   << want[i].page << " tfidf " << got[i].tfidf << " vs "
                   << want[i].tfidf;
                return os.str();
              }
            }
          }
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace qp
}  // namespace jxp
