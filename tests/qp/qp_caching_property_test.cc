#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "proptest.h"
#include "qp/serving.h"

namespace jxp {
namespace qp {
namespace {

/// One randomized caching scenario: a corpus, a peer partition, and a query
/// trace with in-trace and cross-batch repeats (the situation the result and
/// threshold caches exist for).
struct CachingCase {
  uint64_t seed = 0;
  size_t num_nodes = 500;
  size_t num_peers = 2;
  size_t num_distinct = 5;
  size_t trace_len = 12;
  size_t k = 10;
  double prior_weight = 0;

  std::string Describe() const {
    std::ostringstream os;
    os << "seed=" << seed << " nodes=" << num_nodes << " peers=" << num_peers
       << " distinct=" << num_distinct << " trace=" << trace_len << " k=" << k
       << " w=" << prior_weight;
    return os.str();
  }

  std::vector<CachingCase> Shrink() const {
    std::vector<CachingCase> out;
    if (num_nodes > 150) {
      CachingCase c = *this;
      c.num_nodes /= 2;
      out.push_back(c);
    }
    if (num_peers > 1) {
      CachingCase c = *this;
      c.num_peers = 1;
      out.push_back(c);
    }
    if (trace_len > num_distinct) {
      CachingCase c = *this;
      c.trace_len = c.num_distinct;
      out.push_back(c);
    }
    if (prior_weight != 0) {
      CachingCase c = *this;
      c.prior_weight = 0;
      out.push_back(c);
    }
    return out;
  }
};

CachingCase MakeCase(uint64_t seed) {
  Random rng(seed);
  CachingCase c;
  c.seed = seed;
  c.num_nodes = 200 + static_cast<size_t>(rng.NextBounded(500));
  c.num_peers = 1 + static_cast<size_t>(rng.NextBounded(3));
  c.num_distinct = 3 + static_cast<size_t>(rng.NextBounded(4));
  c.trace_len = c.num_distinct + static_cast<size_t>(rng.NextBounded(10));
  c.k = 1 + static_cast<size_t>(rng.NextBounded(15));
  c.prior_weight = rng.NextBounded(2) == 0 ? 0.0 : 0.4;
  return c;
}

std::optional<std::string> CompareBatches(const std::vector<ServedResult>& a,
                                          const std::vector<ServedResult>& b,
                                          const std::string& label) {
  if (a.size() != b.size()) return label + ": batch size mismatch";
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].results.size() != b[q].results.size()) {
      std::ostringstream os;
      os << label << ": query " << q << " size " << a[q].results.size() << " vs "
         << b[q].results.size();
      return os.str();
    }
    for (size_t i = 0; i < a[q].results.size(); ++i) {
      if (a[q].results[i].first != b[q].results[i].first ||
          a[q].results[i].second != b[q].results[i].second) {
        std::ostringstream os;
        os << label << ": query " << q << " rank " << i << " ("
           << a[q].results[i].first << ", " << a[q].results[i].second << ") vs ("
           << b[q].results[i].first << ", " << b[q].results[i].second << ")";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

/// Caches, threshold priming, and the packed codec must not change a single
/// bit of any served result — across thread counts and across a trace split
/// into two batches (the second reruns against warm caches).
TEST(QpCachingProperty, CachedPrimedServingIsBitIdenticalToCold) {
  proptest::ForAll<CachingCase>(
      /*default_seed=*/9260612, /*default_cases=*/8, MakeCase,
      [](const CachingCase& c) -> proptest::CheckResult {
        Random rng(c.seed ^ 0x9e3779b97f4a7c15ull);
        graph::WebGraphParams params;
        params.num_nodes = c.num_nodes;
        params.num_categories = 3;
        const graph::CategorizedGraph collection = graph::GenerateWebGraph(params, rng);
        search::CorpusOptions coptions;
        coptions.vocabulary_size = 2500;
        coptions.category_vocab_size = 350;
        const search::Corpus corpus =
            search::Corpus::Generate(collection, coptions, c.seed + 1);
        std::vector<std::unique_ptr<search::PeerIndex>> indexes;
        for (size_t peer = 0; peer < c.num_peers; ++peer) {
          auto index = std::make_unique<search::PeerIndex>(static_cast<p2p::PeerId>(peer));
          for (graph::PageId p = peer; p < c.num_nodes; p += c.num_peers) {
            index->AddDocument(corpus.DocumentFor(p));
          }
          indexes.push_back(std::move(index));
        }
        std::unordered_map<graph::PageId, double> jxp_scores;
        Random prng(c.seed + 3);
        for (graph::PageId p = 0; p < c.num_nodes; ++p) {
          jxp_scores[p] = prng.NextDouble() / static_cast<double>(c.num_nodes);
        }

        // Distinct query pool, then a trace that revisits it with repeats.
        Random qrng(c.seed + 2);
        std::vector<ServedQuery> pool;
        for (size_t i = 0; i < c.num_distinct; ++i) {
          ServedQuery query;
          query.terms = corpus.SampleQueryTerms(static_cast<graph::CategoryId>(i % 3),
                                                1 + i % 3, qrng);
          pool.push_back(std::move(query));
        }
        std::vector<ServedQuery> trace;
        for (size_t i = 0; i < c.trace_len; ++i) {
          trace.push_back(pool[qrng.NextBounded(pool.size())]);
        }
        const size_t split = trace.size() / 2;
        const std::span<const ServedQuery> first(trace.data(), split);
        const std::span<const ServedQuery> second(trace.data() + split,
                                                  trace.size() - split);

        const auto serve = [&](ProcessorKind kind, size_t threads, BlockCodec codec,
                               bool caches, bool priming) {
          ServingOptions options;
          options.processor = kind;
          options.k = c.k;
          options.num_threads = threads;
          options.threshold_priming = priming;
          if (caches) {
            options.result_cache_capacity = 32;
            options.threshold_cache_capacity = 32;
          }
          QueryServer server(&corpus, options);
          CompressedIndexOptions copts;
          copts.codec = codec;
          copts.prior_weight = c.prior_weight;
          for (const auto& index : indexes) {
            server.AddPeer(index.get(),
                           c.prior_weight == 0.0 ? decltype(jxp_scores){} : jxp_scores,
                           copts);
          }
          // Two batches against ONE server: the second runs with warm caches
          // and cache-derived primed thresholds.
          std::vector<ServedResult> all = server.ServeBatch(first);
          std::vector<ServedResult> rest = server.ServeBatch(second);
          all.insert(all.end(), std::make_move_iterator(rest.begin()),
                     std::make_move_iterator(rest.end()));
          return all;
        };

        const auto oracle = serve(ProcessorKind::kExhaustive, 1, BlockCodec::kVByte,
                                  /*caches=*/false, /*priming=*/false);
        for (const size_t threads : {size_t{1}, size_t{4}}) {
          for (const BlockCodec codec : {BlockCodec::kVByte, BlockCodec::kPacked}) {
            for (const bool caches : {false, true}) {
              std::ostringstream label;
              label << "maxscore threads=" << threads << " codec="
                    << BlockCodecName(codec) << " caches=" << caches;
              const auto arm =
                  serve(ProcessorKind::kMaxScore, threads, codec, caches,
                        /*priming=*/true);
              if (auto mismatch = CompareBatches(oracle, arm, label.str())) {
                return *mismatch;
              }
            }
          }
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace qp
}  // namespace jxp
