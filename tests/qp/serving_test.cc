#include "qp/serving.h"

#include <algorithm>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "obs/latency_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/index.h"

namespace jxp {
namespace qp {
namespace {

struct ServingFixture {
  ServingFixture() {
    Random rng(71);
    graph::WebGraphParams params;
    params.num_nodes = 900;
    params.num_categories = 3;
    collection = graph::GenerateWebGraph(params, rng);
    search::CorpusOptions coptions;
    coptions.vocabulary_size = 3000;
    coptions.category_vocab_size = 400;
    corpus = search::Corpus::Generate(collection, coptions, 72);
    // Three peers, each holding a third of the pages plus a band of
    // replicas overlapping the next peer (exercises cross-peer dedup).
    for (p2p::PeerId peer = 0; peer < 3; ++peer) {
      auto index = std::make_unique<search::PeerIndex>(peer);
      const graph::PageId begin = peer * 300;
      const graph::PageId end = begin + 350;  // 50 replicated pages.
      for (graph::PageId p = begin; p < end && p < 900; ++p) {
        index->AddDocument(corpus.DocumentFor(p));
      }
      if (peer == 2) {
        for (graph::PageId p = 0; p < 50; ++p) index->AddDocument(corpus.DocumentFor(p));
      }
      indexes.push_back(std::move(index));
    }
    Random qrng(73);
    for (int i = 0; i < 24; ++i) {
      ServedQuery query;
      query.terms = corpus.SampleQueryTerms(static_cast<graph::CategoryId>(i % 3),
                                            2 + i % 2, qrng);
      queries.push_back(std::move(query));
    }
  }

  std::unique_ptr<QueryServer> MakeServerWithOptions(ServingOptions options,
                                                     double prior_weight = 0.0,
                                                     size_t block_size = 128) const {
    auto server = std::make_unique<QueryServer>(&corpus, options);
    CompressedIndexOptions copts;
    copts.prior_weight = prior_weight;
    copts.block_size = block_size;
    for (const auto& index : indexes) {
      server->AddPeer(index.get(), jxp_scores, copts);
    }
    return server;
  }

  std::unique_ptr<QueryServer> MakeServer(ProcessorKind processor, size_t threads,
                                          double prior_weight = 0.0,
                                          size_t block_size = 128) const {
    ServingOptions options;
    options.processor = processor;
    options.k = 10;
    options.num_threads = threads;
    return MakeServerWithOptions(options, prior_weight, block_size);
  }

  graph::CategorizedGraph collection;
  search::Corpus corpus;
  std::vector<std::unique_ptr<search::PeerIndex>> indexes;
  std::unordered_map<graph::PageId, double> jxp_scores;
  std::vector<ServedQuery> queries;
};

void ExpectSameResults(const std::vector<ServedResult>& a,
                       const std::vector<ServedResult>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].results.size(), b[q].results.size()) << label << " query " << q;
    for (size_t i = 0; i < a[q].results.size(); ++i) {
      EXPECT_EQ(a[q].results[i].first, b[q].results[i].first)
          << label << " query " << q << " rank " << i;
      EXPECT_EQ(a[q].results[i].second, b[q].results[i].second)
          << label << " query " << q << " rank " << i;
    }
  }
}

TEST(QueryServerTest, AllProcessorsAgreeOnResults) {
  ServingFixture fx;
  const auto exhaustive = fx.MakeServer(ProcessorKind::kExhaustive, 1)->ServeBatch(fx.queries);
  const auto maxscore = fx.MakeServer(ProcessorKind::kMaxScore, 1)->ServeBatch(fx.queries);
  const auto ta = fx.MakeServer(ProcessorKind::kThresholdAlgorithm, 1)->ServeBatch(fx.queries);
  ExpectSameResults(exhaustive, maxscore, "maxscore vs exhaustive");
  ExpectSameResults(exhaustive, ta, "ta vs exhaustive");
}

TEST(QueryServerTest, ResultsAreThreadCountInvariant) {
  ServingFixture fx;
  const auto one = fx.MakeServer(ProcessorKind::kMaxScore, 1)->ServeBatch(fx.queries);
  const auto two = fx.MakeServer(ProcessorKind::kMaxScore, 2)->ServeBatch(fx.queries);
  const auto four = fx.MakeServer(ProcessorKind::kMaxScore, 4)->ServeBatch(fx.queries);
  ExpectSameResults(one, two, "1 vs 2 threads");
  ExpectSameResults(one, four, "1 vs 4 threads");
}

TEST(QueryServerTest, MetricsAreThreadCountInvariant) {
  ServingFixture fx;
  std::string baseline;
  for (size_t threads : {1u, 2u, 4u}) {
    obs::MetricsRegistry::Global().Reset();
    fx.MakeServer(ProcessorKind::kMaxScore, threads)->ServeBatch(fx.queries);
    // Non-timing metrics only: latency histograms legitimately vary.
    const std::string snapshot =
        obs::MetricsRegistry::Global().Snapshot().ToJsonLines(/*include_timing=*/false);
    if (threads == 1) {
      baseline = snapshot;
      EXPECT_NE(baseline.find("jxp.qp.queries"), std::string::npos);
      EXPECT_NE(baseline.find("jxp.qp.postings_decoded"), std::string::npos);
      EXPECT_NE(baseline.find("jxp.qp.blocks_skipped"), std::string::npos);
      EXPECT_NE(baseline.find("jxp.qp.candidates_scored"), std::string::npos);
    } else {
      EXPECT_EQ(snapshot, baseline) << threads << " threads";
    }
  }
  obs::MetricsRegistry::Global().Reset();
}

TEST(QueryServerTest, EmitsServeBatchSpan) {
  ServingFixture fx;
  obs::StringTraceSink sink;
  {
    obs::ScopedTraceSink scoped(&sink);
    fx.MakeServer(ProcessorKind::kMaxScore, 2)->ServeBatch(fx.queries);
  }
  const std::vector<std::string> lines = sink.TakeLines();
  bool found = false;
  for (const std::string& line : lines) {
    if (line.find("qp.serve_batch") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(QueryServerTest, ReportsAggregatedIndexStats) {
  ServingFixture fx;
  const auto server = fx.MakeServer(ProcessorKind::kMaxScore, 1);
  EXPECT_EQ(server->num_peers(), 3u);
  size_t postings = 0;
  for (size_t p = 0; p < server->num_peers(); ++p) {
    postings += server->compressed(p).stats().num_postings;
  }
  EXPECT_EQ(server->index_stats().num_postings, postings);
  EXPECT_LT(server->index_stats().CompressedBytesPerPosting(),
            CompressedIndexStats::kUncompressedBytesPerPosting);
}

TEST(QueryServerTest, MaxScoreDecodesFewerPostingsThanExhaustive) {
  ServingFixture fx;
  // Small blocks: with ~350-document peers the default 128-entry blocks hold
  // whole posting lists, so block skipping would never trigger.
  const auto exhaustive =
      fx.MakeServer(ProcessorKind::kExhaustive, 1, 0.0, /*block_size=*/16)->ServeBatch(fx.queries);
  const auto maxscore =
      fx.MakeServer(ProcessorKind::kMaxScore, 1, 0.0, /*block_size=*/16)->ServeBatch(fx.queries);
  size_t exhaustive_total = 0;
  size_t maxscore_total = 0;
  for (size_t q = 0; q < fx.queries.size(); ++q) {
    exhaustive_total += exhaustive[q].stats.decode.postings_decoded;
    maxscore_total += maxscore[q].stats.decode.postings_decoded;
    EXPECT_LE(maxscore[q].stats.decode.postings_decoded,
              exhaustive[q].stats.decode.postings_decoded)
        << "query " << q;
  }
  EXPECT_LT(maxscore_total, exhaustive_total);
}

ServingOptions CachedOptions(ProcessorKind processor, size_t threads) {
  ServingOptions options;
  options.processor = processor;
  options.k = 10;
  options.num_threads = threads;
  options.result_cache_capacity = 64;
  options.threshold_cache_capacity = 64;
  return options;
}

TEST(QueryServerTest, CachedServingIsBitIdenticalToCold) {
  ServingFixture fx;
  // A trace with repeats: the second half replays the first. The cached
  // server must return bit-identical results to the uncached one, with the
  // replays marked as hits.
  std::vector<ServedQuery> trace = fx.queries;
  trace.insert(trace.end(), fx.queries.begin(), fx.queries.end());

  const auto cold = fx.MakeServer(ProcessorKind::kMaxScore, 1)->ServeBatch(trace);
  for (size_t threads : {1u, 4u}) {
    const auto cached =
        fx.MakeServerWithOptions(CachedOptions(ProcessorKind::kMaxScore, threads))
            ->ServeBatch(trace);
    ExpectSameResults(cold, cached, "cached vs cold");
    for (size_t q = 0; q < fx.queries.size(); ++q) {
      EXPECT_FALSE(cached[q].cache_hit) << "first occurrence " << q;
      EXPECT_TRUE(cached[q + fx.queries.size()].cache_hit) << "replay " << q;
    }
  }
}

TEST(QueryServerTest, InBatchDuplicatesHitWithoutReserving) {
  ServingFixture fx;
  // Same query three times in ONE batch: one evaluation, two in-batch hits,
  // served correctly at any thread count.
  std::vector<ServedQuery> trace = {fx.queries[0], fx.queries[0], fx.queries[0]};
  const auto served =
      fx.MakeServerWithOptions(CachedOptions(ProcessorKind::kMaxScore, 4))
          ->ServeBatch(trace);
  EXPECT_FALSE(served[0].cache_hit);
  EXPECT_TRUE(served[1].cache_hit);
  EXPECT_TRUE(served[2].cache_hit);
  ExpectSameResults({served[0]}, {served[1]}, "dup 1");
  ExpectSameResults({served[0]}, {served[2]}, "dup 2");
  EXPECT_EQ(served[1].stats.decode.postings_decoded, 0u);
}

TEST(QueryServerTest, CachedMetricsAreThreadCountInvariant) {
  ServingFixture fx;
  std::vector<ServedQuery> trace = fx.queries;
  trace.insert(trace.end(), fx.queries.begin(), fx.queries.end());
  std::string baseline;
  for (size_t threads : {1u, 2u, 4u}) {
    obs::MetricsRegistry::Global().Reset();
    fx.MakeServerWithOptions(CachedOptions(ProcessorKind::kMaxScore, threads))
        ->ServeBatch(trace);
    const std::string snapshot =
        obs::MetricsRegistry::Global().Snapshot().ToJsonLines(/*include_timing=*/false);
    if (threads == 1) {
      baseline = snapshot;
      EXPECT_NE(baseline.find("jxp.qp.result_cache_hits"), std::string::npos);
      EXPECT_NE(baseline.find("jxp.qp.primed_queries"), std::string::npos);
    } else {
      EXPECT_EQ(snapshot, baseline) << threads << " threads";
    }
  }
  obs::MetricsRegistry::Global().Reset();
}

TEST(QueryServerTest, ThresholdPrimingPreservesResults) {
  ServingFixture fx;
  ServingOptions unprimed = CachedOptions(ProcessorKind::kMaxScore, 1);
  unprimed.result_cache_capacity = 0;  // Force every query through MaxScore.
  unprimed.threshold_cache_capacity = 0;
  unprimed.threshold_priming = false;  // Pure PR 4 serving path.
  ServingOptions primed = unprimed;
  primed.threshold_priming = true;
  primed.threshold_cache_capacity = 64;

  // Serve the trace twice so the second pass runs with a warm threshold
  // cache (every query primed from its own exact key).
  std::vector<ServedQuery> trace = fx.queries;
  trace.insert(trace.end(), fx.queries.begin(), fx.queries.end());
  // Small blocks as in MaxScoreDecodesFewerPostingsThanExhaustive: the
  // ~350-document peers need fine-grained blocks for skipping to have any
  // room to act.
  const auto cold =
      fx.MakeServerWithOptions(unprimed, 0.0, /*block_size=*/16)->ServeBatch(trace);
  const auto hot =
      fx.MakeServerWithOptions(primed, 0.0, /*block_size=*/16)->ServeBatch(trace);
  ExpectSameResults(cold, hot, "primed vs unprimed");

  // Priming may only ever remove decode work, never add it. (The strict
  // reduction is pinned at the processor level in
  // MaxScoreTopKTest.LiveBlockSkippingCutsDecodeOnSelectiveQueries; on this
  // small fixture the serving-level thresholds land where multi-term range
  // bounds stay alive.)
  size_t cold_postings = 0;
  size_t hot_postings = 0;
  for (size_t q = 0; q < trace.size(); ++q) {
    cold_postings += cold[q].stats.decode.postings_decoded;
    hot_postings += hot[q].stats.decode.postings_decoded;
  }
  EXPECT_LE(hot_postings, cold_postings);
}

TEST(QueryServerTest, AddPeerInvalidatesCaches) {
  ServingFixture fx;
  auto server = fx.MakeServerWithOptions(CachedOptions(ProcessorKind::kMaxScore, 1));
  std::vector<ServedQuery> one_query = {fx.queries[0]};
  server->ServeBatch(one_query);
  auto replay = server->ServeBatch(one_query);
  EXPECT_TRUE(replay[0].cache_hit);

  // A new peer changes the merged results; the stale entry must not survive.
  search::PeerIndex extra(99);
  for (graph::PageId p = 600; p < 900; ++p) extra.AddDocument(fx.corpus.DocumentFor(p));
  server->AddPeer(&extra, fx.jxp_scores, CompressedIndexOptions{});
  auto refreshed = server->ServeBatch(one_query);
  EXPECT_FALSE(refreshed[0].cache_hit);

  auto fresh = fx.MakeServerWithOptions(CachedOptions(ProcessorKind::kMaxScore, 1));
  fresh->AddPeer(&extra, fx.jxp_scores, CompressedIndexOptions{});
  ExpectSameResults(refreshed, fresh->ServeBatch(one_query), "post-AddPeer");
}

TEST(QueryServerTest, PackedCodecServesIdenticalResults) {
  ServingFixture fx;
  const auto vbyte = fx.MakeServer(ProcessorKind::kMaxScore, 1)->ServeBatch(fx.queries);
  ServingOptions options;
  options.processor = ProcessorKind::kMaxScore;
  options.k = 10;
  options.num_threads = 1;
  auto server = std::make_unique<QueryServer>(&fx.corpus, options);
  CompressedIndexOptions copts;
  copts.codec = BlockCodec::kPacked;
  for (const auto& index : fx.indexes) {
    server->AddPeer(index.get(), fx.jxp_scores, copts);
  }
  ExpectSameResults(vbyte, server->ServeBatch(fx.queries), "packed vs vbyte");
  EXPECT_LT(server->index_stats().CompressedBytesPerPosting(),
            CompressedIndexStats::kUncompressedBytesPerPosting);
}

TEST(QueryServerTest, LatencyLayerDoesNotChangeResultsOrMetrics) {
  ServingFixture fx;
  // Reference run: no recorder, no per-query tracing.
  obs::MetricsRegistry::Global().Reset();
  const auto off = fx.MakeServer(ProcessorKind::kMaxScore, 2)->ServeBatch(fx.queries);
  const std::string metrics_off =
      obs::MetricsRegistry::Global().Snapshot().ToJsonLines(/*include_timing=*/false);

  // Instrumented run: recorder installed, qp.query events on.
  obs::MetricsRegistry::Global().Reset();
  ServingOptions options;
  options.processor = ProcessorKind::kMaxScore;
  options.k = 10;
  options.num_threads = 2;
  options.trace_queries = true;
  auto server = fx.MakeServerWithOptions(options);
  obs::LatencyRecorder recorder;
  server->SetLatencyRecorder(&recorder);
  obs::StringTraceSink sink;
  std::vector<ServedResult> on;
  {
    obs::ScopedTraceSink scoped(&sink);
    on = server->ServeBatch(fx.queries);
  }
  const std::string metrics_on =
      obs::MetricsRegistry::Global().Snapshot().ToJsonLines(/*include_timing=*/false);

  ExpectSameResults(off, on, "latency layer on vs off");
  EXPECT_EQ(metrics_on, metrics_off);

  // One end-to-end sample and one qp.query event per query.
  EXPECT_EQ(recorder.StageSnapshot(obs::LatencyStage::kTotal).count(),
            fx.queries.size());
  size_t events = 0;
  for (const std::string& line : sink.TakeLines()) {
    if (line.find("qp.query") != std::string::npos) ++events;
  }
  EXPECT_EQ(events, fx.queries.size());
  obs::MetricsRegistry::Global().Reset();
}

TEST(QueryServerTest, QueryEventsOffByDefault) {
  ServingFixture fx;
  auto server = fx.MakeServer(ProcessorKind::kMaxScore, 1);
  obs::LatencyRecorder recorder;
  server->SetLatencyRecorder(&recorder);  // Recorder alone must not emit events.
  obs::StringTraceSink sink;
  {
    obs::ScopedTraceSink scoped(&sink);
    server->ServeBatch(fx.queries);
  }
  for (const std::string& line : sink.TakeLines()) {
    EXPECT_EQ(line.find("qp.query"), std::string::npos) << line;
  }
  EXPECT_EQ(recorder.TotalCount(), fx.queries.size() * obs::kNumLatencyStages);
}

TEST(QueryServerTest, ResultsInvariantWithRecorderAcrossThreadCounts) {
  // The property the load harness leans on: installing a recorder at any
  // thread count changes neither results nor any non-timing metric.
  ServingFixture fx;
  std::vector<ServedResult> reference;
  std::string baseline;
  for (size_t threads : {1u, 2u, 4u}) {
    obs::MetricsRegistry::Global().Reset();
    auto server = fx.MakeServerWithOptions(CachedOptions(ProcessorKind::kMaxScore, threads));
    obs::LatencyRecorder recorder;
    server->SetLatencyRecorder(&recorder);
    const auto served = server->ServeBatch(fx.queries);
    const std::string snapshot =
        obs::MetricsRegistry::Global().Snapshot().ToJsonLines(/*include_timing=*/false);
    EXPECT_GT(recorder.TotalCount(), 0u);
    if (threads == 1) {
      reference = served;
      baseline = snapshot;
    } else {
      ExpectSameResults(reference, served, "recorder-instrumented thread sweep");
      EXPECT_EQ(snapshot, baseline) << threads << " threads";
    }
  }
  obs::MetricsRegistry::Global().Reset();
}

TEST(QueryServerTest, ServeConcurrentMatchesServeBatch) {
  ServingFixture fx;
  auto server = fx.MakeServer(ProcessorKind::kMaxScore, 1);
  const auto oracle = server->ServeBatch(fx.queries);

  // Real threads, interleaved ownership, per-worker recorders (the TSan CI
  // job runs this). ServeConcurrent bypasses the LRU caches, so against a
  // cache-less server it must reproduce ServeBatch bit for bit.
  constexpr size_t kThreads = 4;
  std::vector<ServedResult> concurrent(fx.queries.size());
  std::vector<std::unique_ptr<obs::LatencyRecorder>> recorders;
  for (size_t t = 0; t < kThreads; ++t) {
    recorders.push_back(std::make_unique<obs::LatencyRecorder>());
  }
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < fx.queries.size(); i += kThreads) {
        server->ServeConcurrent(fx.queries[i], concurrent[i], recorders[t].get());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ExpectSameResults(oracle, concurrent, "concurrent vs batch");
  obs::LatencyRecorder merged;
  for (const auto& r : recorders) merged.MergeFrom(*r);
  EXPECT_EQ(merged.StageSnapshot(obs::LatencyStage::kTotal).count(),
            fx.queries.size());
}

TEST(QueryServerTest, ServingMetricNamesConformToConvention) {
  // Registry self-check after driving the full serving path: every metric
  // the query pipeline registers obeys the naming convention, so the
  // timing filter in ToJsonLines(false) provably catches all of them.
  ServingFixture fx;
  obs::MetricsRegistry::Global().Reset();
  fx.MakeServerWithOptions(CachedOptions(ProcessorKind::kMaxScore, 2))
      ->ServeBatch(fx.queries);
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_FALSE(snapshot.counters.empty());
  for (const auto& c : snapshot.counters) {
    EXPECT_EQ(obs::MetricNameViolation(c.name), "") << c.name;
  }
  for (const auto& g : snapshot.gauges) {
    EXPECT_EQ(obs::MetricNameViolation(g.name), "") << g.name;
  }
  for (const auto& h : snapshot.histograms) {
    EXPECT_EQ(obs::MetricNameViolation(h.name), "") << h.name;
  }
  obs::MetricsRegistry::Global().Reset();
}

TEST(QueryServerTest, PriorFusionServesConsistently) {
  ServingFixture fx;
  for (graph::PageId p = 0; p < 900; ++p) {
    fx.jxp_scores[p] = 1.0 / (3.0 + static_cast<double>((p * 40503u) % 500));
  }
  const auto exhaustive =
      fx.MakeServer(ProcessorKind::kExhaustive, 1, 0.4)->ServeBatch(fx.queries);
  const auto maxscore =
      fx.MakeServer(ProcessorKind::kMaxScore, 4, 0.4)->ServeBatch(fx.queries);
  ExpectSameResults(exhaustive, maxscore, "fused maxscore vs exhaustive");
}

}  // namespace
}  // namespace qp
}  // namespace jxp
