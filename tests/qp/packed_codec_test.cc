#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "qp/bitpack.h"
#include "qp/block_posting_list.h"

namespace jxp {
namespace qp {
namespace {

using PostingIn = BlockPostingList::PostingIn;

std::vector<PostingIn> MakePostings(size_t count, uint64_t seed, uint32_t max_gap) {
  Random rng(seed);
  std::vector<PostingIn> postings;
  postings.reserve(count);
  uint32_t docid = static_cast<uint32_t>(rng.NextInRange(0, 3));
  for (size_t i = 0; i < count; ++i) {
    PostingIn p;
    p.docid = docid;
    p.tf = static_cast<uint32_t>(rng.NextInRange(1, 9));
    p.impact = (1.0 + std::log(static_cast<double>(p.tf))) * 2.3;
    p.prior = rng.NextDouble() * 1e-3;
    postings.push_back(p);
    docid += static_cast<uint32_t>(rng.NextInRange(1, static_cast<int>(max_gap)));
  }
  return postings;
}

TEST(PackedCodecTest, BitWidthCoversValueRange) {
  EXPECT_EQ(BitWidth32(0), 1u);
  EXPECT_EQ(BitWidth32(1), 1u);
  EXPECT_EQ(BitWidth32(2), 2u);
  EXPECT_EQ(BitWidth32(255), 8u);
  EXPECT_EQ(BitWidth32(256), 9u);
  EXPECT_EQ(BitWidth32(0xffffffffu), 32u);
}

TEST(PackedCodecTest, PackUnpackRoundTripsEveryWidth) {
  Random rng(31);
  for (uint32_t width = 1; width <= 32; ++width) {
    const uint64_t mask =
        width == 32 ? 0xffffffffull : ((1ull << width) - 1);
    for (size_t count : {1u, 7u, 8u, 13u, 64u, 129u}) {
      std::vector<uint32_t> values(count);
      for (uint32_t& v : values) {
        v = static_cast<uint32_t>(rng.NextUint64() & mask);
      }
      std::vector<uint8_t> bytes;
      PackBits(values.data(), values.size(), width, bytes);
      EXPECT_EQ(bytes.size(), (count * width + 7) / 8);

      std::vector<uint32_t> decoded(count);
      ASSERT_TRUE(
          UnpackBits(bytes.data(), bytes.size(), 0, count, width, decoded.data()))
          << "width " << width << " count " << count;
      EXPECT_EQ(decoded, values) << "width " << width << " count " << count;
    }
  }
}

TEST(PackedCodecTest, UnpackRejectsTruncatedBuffer) {
  std::vector<uint32_t> values(16, 0x1ffu);
  std::vector<uint8_t> bytes;
  PackBits(values.data(), values.size(), 9, bytes);
  std::vector<uint32_t> decoded(values.size());
  EXPECT_FALSE(
      UnpackBits(bytes.data(), bytes.size() - 1, 0, values.size(), 9, decoded.data()));
  EXPECT_TRUE(
      UnpackBits(bytes.data(), bytes.size(), 0, values.size(), 9, decoded.data()));
}

TEST(PackedCodecTest, PackedListReconstructsAllPostings) {
  const auto postings = MakePostings(1000, 11, 50);
  const BlockPostingList list =
      BlockPostingList::Build(postings, 128, BlockCodec::kPacked);
  EXPECT_EQ(list.codec(), BlockCodec::kPacked);
  EXPECT_EQ(list.num_postings(), postings.size());

  BlockPostingList::Cursor cursor = list.OpenCursor(nullptr);
  size_t i = 0;
  for (cursor.Next(); cursor.docid() != BlockPostingList::kEndDocid; cursor.Next()) {
    ASSERT_LT(i, postings.size());
    EXPECT_EQ(cursor.docid(), postings[i].docid);
    EXPECT_EQ(cursor.freq(), postings[i].tf);
    ++i;
  }
  EXPECT_EQ(i, postings.size());
}

TEST(PackedCodecTest, CursorParityWithVByteAcrossSeeks) {
  // Identical traversal — Next interleaved with NextGEQ jumps — must surface
  // identical postings under both codecs; only the byte layout may differ.
  for (uint64_t seed : {3u, 17u, 91u}) {
    const auto postings = MakePostings(700, seed, 120);
    const BlockPostingList vbyte =
        BlockPostingList::Build(postings, 64, BlockCodec::kVByte);
    const BlockPostingList packed =
        BlockPostingList::Build(postings, 64, BlockCodec::kPacked);

    BlockPostingList::Cursor a = vbyte.OpenCursor(nullptr);
    BlockPostingList::Cursor b = packed.OpenCursor(nullptr);
    Random rng(seed + 1);
    a.Next();
    b.Next();
    while (a.docid() != BlockPostingList::kEndDocid) {
      ASSERT_EQ(a.docid(), b.docid());
      ASSERT_EQ(a.freq(), b.freq());
      if (rng.NextInRange(0, 3) == 0) {
        const uint32_t target = a.docid() + static_cast<uint32_t>(rng.NextInRange(1, 900));
        const bool more_a = a.NextGEQ(target);
        const bool more_b = b.NextGEQ(target);
        ASSERT_EQ(more_a, more_b);
        if (!more_a) break;
      } else {
        a.Next();
        b.Next();
      }
    }
    EXPECT_EQ(a.docid(), b.docid());
  }
}

TEST(PackedCodecTest, FallsBackToVByteWhenSmaller) {
  // One huge delta forces a 32-bit lane width; the remaining small deltas
  // make VByte the smaller encoding for that block, so AppendArea must pick
  // the 0-marker fallback — observable as a packed list no larger than a
  // plain inflation would be, while still decoding correctly.
  std::vector<PostingIn> postings;
  uint32_t docid = 0;
  for (size_t i = 0; i < 64; ++i) {
    PostingIn p;
    p.docid = docid;
    p.tf = 1;
    p.impact = 1.0;
    p.prior = 0.0;
    postings.push_back(p);
    docid += (i == 31) ? 0x20000000u : 1u;  // One 30-bit delta mid-block.
  }
  const BlockPostingList vbyte =
      BlockPostingList::Build(postings, 64, BlockCodec::kVByte);
  const BlockPostingList packed =
      BlockPostingList::Build(postings, 64, BlockCodec::kPacked);
  // Fallback payload = VByte payload + one marker byte per area.
  EXPECT_LE(packed.docid_bytes(), vbyte.docid_bytes() + 1);

  BlockPostingList::Cursor cursor = packed.OpenCursor(nullptr);
  size_t i = 0;
  for (cursor.Next(); cursor.docid() != BlockPostingList::kEndDocid; cursor.Next()) {
    ASSERT_LT(i, postings.size());
    EXPECT_EQ(cursor.docid(), postings[i].docid);
    ++i;
  }
  EXPECT_EQ(i, postings.size());
}

TEST(PackedCodecTest, PackedShrinksDenseLists) {
  // Dense small deltas pack into a few bits per value; the packed payload
  // should beat byte-aligned VByte.
  const auto postings = MakePostings(2000, 5, 6);
  const BlockPostingList vbyte =
      BlockPostingList::Build(postings, 128, BlockCodec::kVByte);
  const BlockPostingList packed =
      BlockPostingList::Build(postings, 128, BlockCodec::kPacked);
  EXPECT_LT(packed.docid_bytes(), vbyte.docid_bytes());
}

}  // namespace
}  // namespace qp
}  // namespace jxp
