#include "synopses/minwise.h"

#include <vector>

#include <gtest/gtest.h>

namespace jxp {
namespace synopses {
namespace {

std::vector<uint64_t> Range(uint64_t lo, uint64_t hi) {
  std::vector<uint64_t> v;
  for (uint64_t x = lo; x < hi; ++x) v.push_back(x);
  return v;
}

TEST(MinWiseTest, IdenticalSetsHaveResemblanceOne) {
  MinWiseFamily family(64, 1);
  const auto keys = Range(0, 500);
  const MinWiseSignature a = family.Sign(std::span<const uint64_t>(keys));
  const MinWiseSignature b = family.Sign(std::span<const uint64_t>(keys));
  EXPECT_DOUBLE_EQ(EstimateResemblance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(EstimateContainment(a, b), 1.0);
}

TEST(MinWiseTest, DisjointSetsHaveLowResemblance) {
  MinWiseFamily family(128, 2);
  const auto k1 = Range(0, 400);
  const auto k2 = Range(10000, 10400);
  const MinWiseSignature a = family.Sign(std::span<const uint64_t>(k1));
  const MinWiseSignature b = family.Sign(std::span<const uint64_t>(k2));
  EXPECT_LT(EstimateResemblance(a, b), 0.05);
}

TEST(MinWiseTest, EstimatesKnownOverlap) {
  // |A| = |B| = 600, |A ∩ B| = 300, |A ∪ B| = 900 => r = 1/3,
  // containment = 0.5.
  MinWiseFamily family(256, 3);
  const auto k1 = Range(0, 600);
  const auto k2 = Range(300, 900);
  const MinWiseSignature a = family.Sign(std::span<const uint64_t>(k1));
  const MinWiseSignature b = family.Sign(std::span<const uint64_t>(k2));
  EXPECT_NEAR(EstimateResemblance(a, b), 1.0 / 3, 0.08);
  EXPECT_NEAR(EstimateOverlap(a, b), 300, 70);
  EXPECT_NEAR(EstimateContainment(a, b), 0.5, 0.12);
  EXPECT_NEAR(EstimateUnionSize(a, b), 900, 120);
}

TEST(MinWiseTest, ContainmentIsAsymmetric) {
  // B ⊂ A: containment(A, B) = 1, containment(B, A) = |B|/|A|.
  MinWiseFamily family(256, 4);
  const auto big = Range(0, 1000);
  const auto small = Range(0, 250);
  const MinWiseSignature a = family.Sign(std::span<const uint64_t>(big));
  const MinWiseSignature b = family.Sign(std::span<const uint64_t>(small));
  EXPECT_NEAR(EstimateContainment(a, b), 1.0, 0.1);
  EXPECT_NEAR(EstimateContainment(b, a), 0.25, 0.1);
}

TEST(MinWiseTest, UnionSignatureMatchesSignatureOfUnion) {
  MinWiseFamily family(64, 5);
  const auto k1 = Range(0, 300);
  const auto k2 = Range(200, 500);
  const auto ku = Range(0, 500);
  const MinWiseSignature a = family.Sign(std::span<const uint64_t>(k1));
  const MinWiseSignature b = family.Sign(std::span<const uint64_t>(k2));
  const MinWiseSignature u = MinWiseSignature::Union(a, b);
  const MinWiseSignature direct = family.Sign(std::span<const uint64_t>(ku));
  EXPECT_EQ(u.minima(), direct.minima());
}

TEST(MinWiseTest, EmptySets) {
  MinWiseFamily family(32, 6);
  const std::vector<uint64_t> empty;
  const auto keys = Range(0, 10);
  const MinWiseSignature e = family.Sign(std::span<const uint64_t>(empty));
  const MinWiseSignature a = family.Sign(std::span<const uint64_t>(keys));
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(EstimateResemblance(e, e), 1.0);
  EXPECT_DOUBLE_EQ(EstimateResemblance(e, a), 0.0);
  EXPECT_DOUBLE_EQ(EstimateContainment(a, e), 0.0);
}

TEST(MinWiseTest, SignatureWireSize) {
  MinWiseFamily family(64, 7);
  const auto keys = Range(0, 10);
  const MinWiseSignature a = family.Sign(std::span<const uint64_t>(keys));
  EXPECT_EQ(a.SizeBytes(), 64u * 8 + 8);
}

TEST(MinWiseTest, SharedFamilyIsComparableAcrossInstances) {
  // Two peers construct the family independently from the same seed.
  MinWiseFamily f1(64, 42);
  MinWiseFamily f2(64, 42);
  const auto keys = Range(0, 100);
  EXPECT_EQ(f1.Sign(std::span<const uint64_t>(keys)).minima(),
            f2.Sign(std::span<const uint64_t>(keys)).minima());
}

TEST(MinWiseTest, ThirtyTwoBitOverloadMatches) {
  MinWiseFamily family(32, 8);
  std::vector<uint32_t> keys32 = {1, 5, 9};
  std::vector<uint64_t> keys64 = {1, 5, 9};
  EXPECT_EQ(family.Sign(std::span<const uint32_t>(keys32)).minima(),
            family.Sign(std::span<const uint64_t>(keys64)).minima());
}

}  // namespace
}  // namespace synopses
}  // namespace jxp
