#include "synopses/hash_sketch.h"

#include <gtest/gtest.h>

namespace jxp {
namespace synopses {
namespace {

TEST(HashSketchTest, EmptyEstimatesNearZero) {
  HashSketch sketch(64);
  EXPECT_NEAR(sketch.EstimateCardinality(), 0, 1.0);
}

TEST(HashSketchTest, EstimatesWithinExpectedError) {
  HashSketch sketch(128);
  for (uint64_t k = 0; k < 5000; ++k) sketch.Add(k);
  // PCSA standard error ~ 0.78/sqrt(m) ≈ 7%; allow 3 sigma.
  EXPECT_NEAR(sketch.EstimateCardinality(), 5000, 5000 * 0.21);
}

TEST(HashSketchTest, DuplicatesDoNotInflate) {
  HashSketch once(64);
  HashSketch tenTimes(64);
  for (uint64_t k = 0; k < 1000; ++k) once.Add(k);
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t k = 0; k < 1000; ++k) tenTimes.Add(k);
  }
  EXPECT_DOUBLE_EQ(once.EstimateCardinality(), tenTimes.EstimateCardinality());
}

TEST(HashSketchTest, UnionIsLossless) {
  HashSketch a(64);
  HashSketch b(64);
  HashSketch direct(64);
  for (uint64_t k = 0; k < 800; ++k) {
    (k % 2 ? a : b).Add(k);
    direct.Add(k);
  }
  a.UnionWith(b);
  EXPECT_DOUBLE_EQ(a.EstimateCardinality(), direct.EstimateCardinality());
}

TEST(HashSketchTest, OverlapEstimate) {
  HashSketch a(256);
  HashSketch b(256);
  for (uint64_t k = 0; k < 3000; ++k) a.Add(k);
  for (uint64_t k = 1500; k < 4500; ++k) b.Add(k);
  EXPECT_NEAR(EstimateOverlap(a, b), 1500, 900);
  const double containment = EstimateContainment(a, b);
  EXPECT_GT(containment, 0.2);
  EXPECT_LT(containment, 0.8);
}

TEST(HashSketchTest, WireSize) {
  HashSketch sketch(64);
  EXPECT_EQ(sketch.SizeBytes(), 64u * 8);
}

}  // namespace
}  // namespace synopses
}  // namespace jxp
