#include "synopses/bloom.h"

#include <gtest/gtest.h>

namespace jxp {
namespace synopses {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(4096, 4);
  for (uint64_t k = 0; k < 200; ++k) filter.Add(k * 7);
  for (uint64_t k = 0; k < 200; ++k) EXPECT_TRUE(filter.MayContain(k * 7));
}

TEST(BloomFilterTest, LowFalsePositiveRateWhenSized) {
  BloomFilter filter(8192, 5);
  for (uint64_t k = 0; k < 500; ++k) filter.Add(k);
  int false_positives = 0;
  for (uint64_t k = 10000; k < 12000; ++k) {
    if (filter.MayContain(k)) ++false_positives;
  }
  EXPECT_LT(false_positives, 60);  // ~3% at this load.
}

TEST(BloomFilterTest, CardinalityEstimate) {
  BloomFilter filter(16384, 4);
  for (uint64_t k = 0; k < 1000; ++k) filter.Add(k);
  EXPECT_NEAR(filter.EstimateCardinality(), 1000, 100);
}

TEST(BloomFilterTest, UnionAndOverlap) {
  BloomFilter a(16384, 4);
  BloomFilter b(16384, 4);
  for (uint64_t k = 0; k < 600; ++k) a.Add(k);
  for (uint64_t k = 300; k < 900; ++k) b.Add(k);
  EXPECT_NEAR(EstimateOverlap(a, b), 300, 90);
  EXPECT_NEAR(EstimateContainment(a, b), 0.5, 0.15);
}

TEST(BloomFilterTest, SaturatedFilterClamps) {
  BloomFilter tiny(64, 2);
  for (uint64_t k = 0; k < 10000; ++k) tiny.Add(k);
  EXPECT_LE(tiny.EstimateCardinality(), 64.0);
}

TEST(BloomFilterTest, WireSize) {
  BloomFilter filter(1024, 3);
  EXPECT_EQ(filter.SizeBytes(), 1024u / 8);
}

}  // namespace
}  // namespace synopses
}  // namespace jxp
