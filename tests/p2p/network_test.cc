#include "p2p/network.h"

#include <gtest/gtest.h>

#include "p2p/churn.h"

namespace jxp {
namespace p2p {
namespace {

TEST(NetworkTest, AddAndQueryPeers) {
  Network network;
  EXPECT_EQ(network.AddPeer(), 0u);
  EXPECT_EQ(network.AddPeer(), 1u);
  EXPECT_EQ(network.NumPeers(), 2u);
  EXPECT_EQ(network.NumAlive(), 2u);
  EXPECT_TRUE(network.IsAlive(0));
}

TEST(NetworkTest, LeaveAndRejoin) {
  Network network;
  network.AddPeer();
  network.AddPeer();
  network.AddPeer();
  network.Leave(1);
  EXPECT_FALSE(network.IsAlive(1));
  EXPECT_EQ(network.NumAlive(), 2u);
  EXPECT_EQ(network.AlivePeers(), (std::vector<PeerId>{0, 2}));
  network.Rejoin(1);
  EXPECT_TRUE(network.IsAlive(1));
  EXPECT_EQ(network.NumAlive(), 3u);
}

TEST(NetworkTest, RandomAlivePeerRespectsExclusionAndLiveness) {
  Network network;
  for (int i = 0; i < 5; ++i) network.AddPeer();
  network.Leave(2);
  Random rng(1);
  for (int i = 0; i < 200; ++i) {
    const PeerId p = network.RandomAlivePeer(rng, 0);
    EXPECT_NE(p, 0u);
    EXPECT_NE(p, 2u);
    EXPECT_LT(p, 5u);
  }
}

TEST(NetworkTest, TrafficAccounting) {
  Network network;
  network.AddPeer();
  network.AddPeer();
  network.RecordMeetingTraffic(0, 100);
  network.RecordMeetingTraffic(0, 250);
  network.RecordMeetingTraffic(1, 50);
  EXPECT_EQ(network.TrafficOf(0).bytes_per_meeting.size(), 2u);
  EXPECT_DOUBLE_EQ(network.TrafficOf(0).bytes_per_meeting[1], 250);
  EXPECT_DOUBLE_EQ(network.TrafficOf(0).total_bytes, 350);
  EXPECT_DOUBLE_EQ(network.TotalTrafficBytes(), 400);
}

TEST(ChurnTest, NoChurnWithZeroProbabilities) {
  Network network;
  for (int i = 0; i < 4; ++i) network.AddPeer();
  ChurnModel churn(ChurnModel::Options{}, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(churn.Step(network).type, ChurnEventType::kNone);
  }
  EXPECT_EQ(network.NumAlive(), 4u);
}

TEST(ChurnTest, RespectsMinAliveFloor) {
  Network network;
  for (int i = 0; i < 5; ++i) network.AddPeer();
  ChurnModel::Options options;
  options.leave_probability = 1.0;
  options.min_alive = 3;
  ChurnModel churn(options, 2);
  for (int i = 0; i < 50; ++i) churn.Step(network);
  EXPECT_EQ(network.NumAlive(), 3u);
}

TEST(ChurnTest, JoinsBringPeersBack) {
  Network network;
  for (int i = 0; i < 6; ++i) network.AddPeer();
  network.Leave(0);
  network.Leave(1);
  ChurnModel::Options options;
  options.join_probability = 1.0;
  ChurnModel churn(options, 3);
  EXPECT_EQ(churn.Step(network).type, ChurnEventType::kJoin);
  EXPECT_EQ(churn.Step(network).type, ChurnEventType::kJoin);
  EXPECT_EQ(churn.Step(network).type, ChurnEventType::kNone);
  EXPECT_EQ(network.NumAlive(), 6u);
}

TEST(ChurnTest, MixedChurnKeepsNetworkWithinBounds) {
  Network network;
  for (int i = 0; i < 10; ++i) network.AddPeer();
  ChurnModel::Options options;
  options.leave_probability = 0.3;
  options.join_probability = 0.3;
  options.min_alive = 4;
  ChurnModel churn(options, 4);
  for (int i = 0; i < 500; ++i) {
    churn.Step(network);
    EXPECT_GE(network.NumAlive(), 4u);
    EXPECT_LE(network.NumAlive(), 10u);
  }
}

}  // namespace
}  // namespace p2p
}  // namespace jxp
