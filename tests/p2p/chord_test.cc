#include "p2p/chord.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"

namespace jxp {
namespace p2p {
namespace {

ChordRing MakeRing(size_t num_peers, bool stabilize = true) {
  ChordRing ring;
  for (PeerId p = 0; p < num_peers; ++p) JXP_CHECK_OK(ring.Join(p));
  if (stabilize) ring.Stabilize();
  return ring;
}

TEST(ChordTest, JoinLeaveBookkeeping) {
  ChordRing ring;
  EXPECT_TRUE(ring.Join(1).ok());
  EXPECT_TRUE(ring.Join(2).ok());
  EXPECT_EQ(ring.Join(1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ring.NumPeers(), 2u);
  EXPECT_TRUE(ring.Leave(1).ok());
  EXPECT_EQ(ring.Leave(1).code(), StatusCode::kNotFound);
  EXPECT_FALSE(ring.Contains(1));
  EXPECT_TRUE(ring.Contains(2));
}

TEST(ChordTest, OwnershipIsConsistentHashing) {
  ChordRing ring = MakeRing(50);
  // Every key has exactly one owner, and ownership only changes for keys in
  // the departed peer's range.
  Random rng(1);
  std::vector<uint64_t> keys(500);
  for (auto& k : keys) k = rng.NextUint64();
  std::vector<PeerId> owners_before;
  for (uint64_t k : keys) owners_before.push_back(ring.OwnerOf(k));
  JXP_CHECK_OK(ring.Leave(7));
  size_t changed = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    const PeerId now = ring.OwnerOf(keys[i]);
    if (now != owners_before[i]) {
      EXPECT_EQ(owners_before[i], 7u) << "non-minimal ownership churn";
      ++changed;
    }
  }
  // Only ~1/50th of keys should move.
  EXPECT_LT(changed, 40u);
}

TEST(ChordTest, LookupFindsTrueOwner) {
  ChordRing ring = MakeRing(64);
  Random rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const uint64_t key = rng.NextUint64();
    const PeerId start = static_cast<PeerId>(rng.NextBounded(64));
    const ChordRing::LookupResult r = ring.Lookup(key, start);
    EXPECT_EQ(r.owner, ring.OwnerOf(key));
  }
}

TEST(ChordTest, LookupIsLogarithmic) {
  ChordRing ring = MakeRing(256);
  Random rng(3);
  double total_hops = 0;
  const int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t key = rng.NextUint64();
    const PeerId start = static_cast<PeerId>(rng.NextBounded(256));
    total_hops += static_cast<double>(ring.Lookup(key, start).hops);
  }
  const double mean_hops = total_hops / kTrials;
  // Chord's expectation is ~0.5 log2 n = 4; allow generous slack but far
  // below the linear-walk cost of 128.
  EXPECT_LT(mean_hops, 12.0);
  EXPECT_GT(mean_hops, 1.0);
}

TEST(ChordTest, LookupSurvivesStaleFingers) {
  // Join 64 peers, stabilize, then churn 32 more in and 16 out WITHOUT
  // re-stabilizing: lookups must still find the true owner via successor
  // fallback.
  ChordRing ring = MakeRing(64);
  for (PeerId p = 64; p < 96; ++p) JXP_CHECK_OK(ring.Join(p));
  for (PeerId p = 0; p < 16; ++p) JXP_CHECK_OK(ring.Leave(p));
  Random rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t key = rng.NextUint64();
    const PeerId start = static_cast<PeerId>(16 + rng.NextBounded(80));
    const ChordRing::LookupResult r = ring.Lookup(key, start);
    EXPECT_EQ(r.owner, ring.OwnerOf(key));
  }
}

TEST(ChordTest, SinglePeerOwnsEverything) {
  ChordRing ring = MakeRing(1);
  EXPECT_EQ(ring.OwnerOf(0), 0u);
  EXPECT_EQ(ring.OwnerOf(~uint64_t{0}), 0u);
  const auto r = ring.Lookup(12345, 0);
  EXPECT_EQ(r.owner, 0u);
  EXPECT_EQ(r.hops, 0u);
}

TEST(ChordTest, LoadIsBalanced) {
  ChordRing ring = MakeRing(32);
  Random rng(5);
  std::vector<size_t> load(32, 0);
  for (int i = 0; i < 20000; ++i) load[ring.OwnerOf(rng.NextUint64())]++;
  // With random hashing the max/mean load ratio stays moderate (O(log n)
  // imbalance is expected for plain consistent hashing).
  size_t max_load = 0;
  for (size_t l : load) max_load = std::max(max_load, l);
  EXPECT_LT(static_cast<double>(max_load), 20000.0 / 32 * 8);
}

}  // namespace
}  // namespace p2p
}  // namespace jxp
