// A tour of the structured-overlay machinery under a Minerva-style P2P
// search network: the Chord ring, the distributed per-term directory built
// on it, DHT-routed query routing, and threshold-algorithm top-k retrieval
// inside a peer.
//
// Build & run:  ./build/examples/dht_directory_tour

#include <cstdio>

#include "common/random.h"
#include "datasets/collections.h"
#include "pagerank/pagerank.h"
#include "search/directory.h"
#include "search/engine.h"
#include "search/threshold_top_k.h"

int main() {
  using namespace jxp;  // NOLINT: example brevity.

  // Part 1: the Chord ring.
  std::printf("=== Chord ring ===\n");
  p2p::ChordRing ring;
  const size_t kPeers = 64;
  for (p2p::PeerId p = 0; p < kPeers; ++p) JXP_CHECK_OK(ring.Join(p));
  ring.Stabilize();
  Random rng(1);
  double hops = 0;
  const int kLookups = 500;
  for (int i = 0; i < kLookups; ++i) {
    hops += static_cast<double>(
        ring.Lookup(rng.NextUint64(), static_cast<p2p::PeerId>(rng.NextBounded(kPeers)))
            .hops);
  }
  std::printf("%zu peers, %d random lookups: %.2f hops on average (log2 n = 6)\n\n",
              kPeers, kLookups, hops / kLookups);

  // Part 2: a collection, indexes, and the DHT directory.
  const datasets::Collection collection = datasets::MakeWebCrawlLike(0.02, 2);
  const search::Corpus corpus =
      search::Corpus::Generate(collection.data, search::CorpusOptions(), 3);
  const auto truth = ComputePageRank(collection.data.graph, pagerank::PageRankOptions());
  std::unordered_map<graph::PageId, double> jxp_scores;
  for (graph::PageId p = 0; p < collection.data.graph.NumNodes(); ++p) {
    jxp_scores[p] = truth.scores[p];
  }

  search::MinervaEngine engine(&corpus, search::SearchOptions());
  p2p::ChordRing search_ring;
  std::vector<std::vector<graph::PageId>> fragments(10);
  for (graph::PageId p = 0; p < collection.data.graph.NumNodes(); ++p) {
    fragments[collection.data.category[p]].push_back(p);
  }
  for (p2p::PeerId peer = 0; peer < 10; ++peer) {
    engine.AddPeer(peer, fragments[peer]);
    JXP_CHECK_OK(search_ring.Join(peer));
  }
  search_ring.Stabilize();

  search::DhtDirectory directory(&search_ring);
  engine.PublishToDirectory(directory, jxp_scores);
  std::printf("=== DHT directory ===\n");
  std::printf("published stats for %zu terms; %zu routing hops, %.1f KB on the wire\n\n",
              directory.NumTerms(), directory.total_publish_hops(),
              directory.total_wire_bytes() / 1024.0);

  // Part 3: routing a query through the directory.
  Random qrng(4);
  const auto query = corpus.SampleQueryTerms(/*category=*/5, 3, qrng);
  const auto routed = engine.RoutePeersViaDirectory(
      query, directory, /*asking_peer=*/0, search::RoutingPolicy::kJxpAuthority);
  std::printf("=== Query routing via the directory ===\n");
  std::printf("query on topic 5 -> best peers by JXP authority mass:");
  for (size_t i = 0; i < routed.size() && i < 3; ++i) std::printf(" %u", routed[i]);
  std::printf("  (peer 5 hosts that topic)\n\n");

  // Part 4: threshold-algorithm top-k inside the best peer.
  search::PeerIndex index(routed[0]);
  for (graph::PageId p : fragments[routed[0]]) index.AddDocument(corpus.DocumentFor(p));
  const search::ThresholdTopKResult ta =
      search::ThresholdTopK(index, corpus, query, 10);
  size_t total_postings = 0;
  for (search::TermId term : query) {
    if (const auto* postings = index.PostingsFor(term)) total_postings += postings->size();
  }
  std::printf("=== Threshold-algorithm top-10 at peer %u ===\n", routed[0]);
  std::printf("%zu sorted + %zu random accesses instead of scanning %zu postings "
              "(early termination: %s)\n",
              ta.sorted_accesses, ta.random_accesses, total_postings,
              ta.early_terminated ? "yes" : "no");
  for (size_t i = 0; i < ta.results.size() && i < 3; ++i) {
    std::printf("  #%zu page %u (tf*idf %.2f)\n", i + 1, ta.results[i].first,
                ta.results[i].second);
  }
  return 0;
}
