// P2P Web search with JXP-enhanced ranking (the paper's Section 6.3 /
// Minerva scenario, end to end):
//
//  1. generate a categorized Web-like collection and a topical corpus;
//  2. split it across 40 peers (10 categories x 4 fragments, 3 of 4 hosted);
//  3. converge JXP authority scores through peer meetings;
//  4. answer topical queries, comparing pure tf*idf ranking against the
//     fused 0.6*tf*idf + 0.4*JXP ranking, and document-frequency routing
//     against JXP-authority routing (the paper's future-work idea).
//
// Build & run:  ./build/examples/p2p_web_search

#include <cstdio>

#include "core/simulation.h"
#include "crawler/partitioner.h"
#include "datasets/collections.h"
#include "metrics/ranking.h"
#include "search/engine.h"

int main() {
  using namespace jxp;  // NOLINT: example brevity.

  // 1. Collection + corpus.
  const datasets::Collection collection = datasets::MakeWebCrawlLike(0.03, 1);
  std::printf("collection: %zu pages, %zu links, %u categories\n",
              collection.data.graph.NumNodes(), collection.data.graph.NumEdges(),
              collection.data.num_categories);
  const search::Corpus corpus =
      search::Corpus::Generate(collection.data, search::CorpusOptions(), 2);

  // 2. Peer layout: high overlap among same-topic peers.
  Random rng(3);
  const auto fragments = crawler::FragmentSplitPartition(collection.data, 4, 3, rng);

  // 3. Converge JXP.
  core::SimulationConfig sim_config;
  sim_config.strategy = core::SelectionStrategy::kPreMeetings;
  sim_config.seed = 4;
  sim_config.eval_top_k = 100;
  core::JxpSimulation sim(collection.data.graph, fragments, sim_config);
  sim.RunMeetings(600);
  std::printf("after %zu meetings: footrule vs centralized PR = %.3f\n\n",
              sim.meetings_done(), sim.Evaluate().footrule);
  const auto jxp_scores = sim.GlobalJxpScores();

  // 4. Search.
  search::SearchOptions search_options;
  search_options.peers_to_route = 6;
  search_options.jxp_weight = 0.4;
  search::MinervaEngine engine(&corpus, search_options);
  for (size_t p = 0; p < fragments.size(); ++p) {
    engine.AddPeer(static_cast<p2p::PeerId>(p), fragments[p]);
  }

  for (graph::CategoryId category : {0u, 3u, 7u}) {
    const auto query = corpus.SampleQueryTerms(category, 3, rng);
    const auto relevant =
        search::RelevantPages(collection.data, sim.global_scores(), category, 0.05);
    const auto results =
        engine.ExecuteQuery(query, jxp_scores, search::RoutingPolicy::kDocumentFrequency);
    const auto by_tfidf = search::RankByTfIdf(results, 10);
    const auto by_fused = search::RankByFused(results, 10);
    std::printf("query on topic %u (%zu candidate results)\n", category, results.size());
    std::printf("  precision@10 tf*idf:            %.0f%%\n",
                100 * metrics::PrecisionAtK(by_tfidf, relevant, 10));
    std::printf("  precision@10 0.6 tf*idf+0.4 JXP: %.0f%%\n",
                100 * metrics::PrecisionAtK(by_fused, relevant, 10));
    // Routing comparison: where would the query go?
    const auto df_route =
        engine.RoutePeers(query, jxp_scores, search::RoutingPolicy::kDocumentFrequency);
    const auto jxp_route =
        engine.RoutePeers(query, jxp_scores, search::RoutingPolicy::kJxpAuthority);
    std::printf("  routing (df):  peers %u %u %u ...\n", df_route[0], df_route[1],
                df_route[2]);
    std::printf("  routing (jxp): peers %u %u %u ...\n\n", jxp_route[0], jxp_route[1],
                jxp_route[2]);
  }
  return 0;
}
