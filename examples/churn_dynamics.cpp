// Churn and re-crawl dynamics (the paper's Section 7 future work,
// implemented here): peers leave and re-join the overlay while others
// re-crawl and change their fragments. JXP is designed to cope with such
// dynamics; this example shows the accuracy dip after a perturbation and
// the re-convergence that follows, using the authoritative-refresh
// extension (see core::JxpOptions) so stale knowledge can heal.
//
// Build & run:  ./build/examples/churn_dynamics

#include <cstdio>

#include "core/simulation.h"
#include "crawler/partitioner.h"
#include "datasets/collections.h"

int main() {
  using namespace jxp;  // NOLINT: example brevity.

  const datasets::Collection collection = datasets::MakeAmazonLike(0.05, 11);
  std::printf("collection: %zu pages, %zu links\n", collection.data.graph.NumNodes(),
              collection.data.graph.NumEdges());

  Random rng(12);
  crawler::PartitionOptions partition;
  partition.peers_per_category = 2;  // 20 peers.
  partition.crawler.max_pages = collection.data.graph.NumNodes() / 8;
  auto fragments = CrawlBasedPartition(collection.data, partition, rng);

  core::SimulationConfig config;
  config.seed = 13;
  config.eval_top_k = 200;
  config.jxp.authoritative_refresh = true;  // Churn-robust refresh semantics.
  // Background churn: occasional departures and returns.
  config.churn.leave_probability = 0.002;
  config.churn.join_probability = 0.01;
  config.churn.min_alive = 10;
  core::JxpSimulation sim(collection.data.graph, fragments, config);

  auto report = [&](const char* phase) {
    const core::AccuracyPoint point = sim.Evaluate();
    std::printf("%-28s meetings=%5zu alive=%2zu footrule=%.3f linear_error=%.2e\n",
                phase, sim.meetings_done(), sim.network().NumAlive(), point.footrule,
                point.linear_error);
  };

  report("start");
  sim.RunMeetings(500);
  report("after warm-up");

  // A burst of departures.
  for (p2p::PeerId p = 0; p < 5; ++p) sim.ForceLeave(p);
  report("5 peers departed");
  sim.RunMeetings(300);
  report("network adapted");

  // The departed peers return with *re-crawled* (different) fragments.
  // (The background churn may have brought some of them back already.)
  for (p2p::PeerId p = 0; p < 5; ++p) {
    if (!sim.network().IsAlive(p)) sim.ForceRejoin(p);
    crawler::CrawlerOptions crawl;
    crawl.max_pages = collection.data.graph.NumNodes() / 8;
    sim.ReplaceFragment(
        p, ThematicCrawl(collection.data,
                         static_cast<graph::CategoryId>(p % collection.data.num_categories),
                         crawl, rng));
  }
  report("rejoined with new crawls");
  sim.RunMeetings(700);
  report("re-converged");
  return 0;
}
