// A tour of the pre-meetings peer-selection machinery (Section 4.3):
// min-wise permutation signatures, containment estimation, and the effect
// of biased partner selection on convergence speed and network traffic.
//
// Build & run:  ./build/examples/peer_selection_tour

#include <cstdio>

#include "core/simulation.h"
#include "crawler/partitioner.h"
#include "datasets/collections.h"
#include "synopses/minwise.h"

int main() {
  using namespace jxp;  // NOLINT: example brevity.

  // Part 1: what a MIPs signature buys you.
  std::printf("=== Min-wise permutation signatures ===\n");
  const synopses::MinWiseFamily family(128, 0xa11ce5eedULL);
  std::vector<uint64_t> crawl_a;
  std::vector<uint64_t> crawl_b;
  for (uint64_t p = 0; p < 3000; ++p) crawl_a.push_back(p);
  for (uint64_t p = 2000; p < 5000; ++p) crawl_b.push_back(p);  // 1/3 overlap.
  const auto sig_a = family.Sign(std::span<const uint64_t>(crawl_a));
  const auto sig_b = family.Sign(std::span<const uint64_t>(crawl_b));
  std::printf("two 3000-page crawls, true overlap 1000 pages\n");
  std::printf("signature size: %zu bytes (vs %zu bytes for the raw page set)\n",
              sig_a.SizeBytes(), crawl_a.size() * 8);
  std::printf("estimated overlap:     %.0f\n", EstimateOverlap(sig_a, sig_b));
  std::printf("estimated containment: %.2f (true 0.33)\n\n",
              EstimateContainment(sig_a, sig_b));

  // Part 2: biased vs random partner selection on a real JXP run.
  std::printf("=== Random vs pre-meetings partner selection ===\n");
  const datasets::Collection collection = datasets::MakeAmazonLike(0.06, 21);
  Random rng(22);
  crawler::PartitionOptions partition;
  partition.peers_per_category = 4;  // 40 peers.
  partition.crawler.max_pages = collection.data.graph.NumNodes() / 12;
  const auto fragments = CrawlBasedPartition(collection.data, partition, rng);

  for (const auto strategy :
       {core::SelectionStrategy::kRandom, core::SelectionStrategy::kPreMeetings}) {
    core::SimulationConfig config;
    config.strategy = strategy;
    config.seed = 23;
    config.eval_top_k = 500;
    core::JxpSimulation sim(collection.data.graph, fragments, config);
    std::printf("%s:\n", strategy == core::SelectionStrategy::kRandom
                             ? "random selection"
                             : "pre-meetings selection");
    for (int phase = 0; phase < 4; ++phase) {
      sim.RunMeetings(250);
      const core::AccuracyPoint point = sim.Evaluate();
      std::printf("  %4zu meetings: footrule=%.3f linear_error=%.2e traffic=%.1f MB\n",
                  sim.meetings_done(), point.footrule, point.linear_error,
                  sim.network().TotalTrafficBytes() / (1024.0 * 1024.0));
    }
  }
  return 0;
}
