// Quickstart: the JXP algorithm in ~60 lines.
//
// Three autonomous peers each crawl an overlapping fragment of a small Web
// graph. Each peer extends its fragment with a *world node*, runs local
// PageRank, and repeatedly meets random peers to exchange knowledge. The
// peers' JXP scores converge to the true global PageRank that none of them
// could compute alone.
//
// Build & run:  ./build/examples/quickstart

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "core/jxp_peer.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "metrics/ranking.h"
#include "pagerank/pagerank.h"

using jxp::core::JxpOptions;
using jxp::core::JxpPeer;
using jxp::graph::PageId;
using jxp::graph::Subgraph;

int main() {
  // A small Web-like graph with power-law in-degrees.
  jxp::Random rng(2006);
  const jxp::graph::Graph web = jxp::graph::BarabasiAlbert(/*num_nodes=*/100,
                                                           /*out_degree=*/3, rng);

  // The centralized PageRank no peer is allowed to see - our yardstick.
  jxp::pagerank::PageRankOptions pr_options;
  pr_options.tolerance = 1e-12;
  const auto truth = ComputePageRank(web, pr_options);

  // Three peers with arbitrary, overlapping fragments.
  std::vector<std::vector<PageId>> fragments(3);
  for (PageId p = 0; p < web.NumNodes(); ++p) {
    fragments[rng.NextBounded(3)].push_back(p);           // A home peer...
    if (rng.NextBool(0.4)) fragments[rng.NextBounded(3)].push_back(p);  // ...plus overlap.
  }
  JxpOptions options;  // Defaults: light-weight merging, take-max combining.
  std::vector<JxpPeer> peers;
  for (size_t i = 0; i < fragments.size(); ++i) {
    peers.emplace_back(static_cast<jxp::p2p::PeerId>(i),
                       Subgraph::Induce(web, fragments[i]), web.NumNodes(), options);
  }

  // Random pairwise meetings; watch the error melt away.
  auto worst_error = [&] {
    double worst = 0;
    for (const JxpPeer& peer : peers) {
      for (PageId p : peer.fragment().Pages()) {
        worst = std::max(worst, std::abs(peer.ScoreOfGlobal(p) - truth.scores[p]));
      }
    }
    return worst;
  };
  std::printf("meetings  worst |JXP - PR|   world scores\n");
  for (int meeting = 0; meeting <= 60; ++meeting) {
    if (meeting % 10 == 0) {
      std::printf("%8d  %14.2e   [%.3f %.3f %.3f]\n", meeting, worst_error(),
                  peers[0].world_score(), peers[1].world_score(),
                  peers[2].world_score());
    }
    const size_t a = rng.NextBounded(peers.size());
    size_t b = rng.NextBounded(peers.size() - 1);
    if (b >= a) ++b;
    JxpPeer::Meet(peers[a], peers[b]);
  }
  std::printf("\nTop-5 pages, true PR vs peer 0's JXP view:\n");
  const auto top = jxp::metrics::TopK(std::span<const double>(truth.scores), 5);
  for (const auto& [page, score] : top) {
    std::printf("  page %3u: PR=%.5f  JXP=%.5f%s\n", page, score,
                peers[0].ScoreOfGlobal(page),
                peers[0].fragment().Contains(page) ? "" : "  (not local at peer 0)");
  }
  return 0;
}
